package fleet

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// traceLogBuffer is a mutex-guarded sink for the process-wide obs
// logger; router and node handlers log from separate goroutines.
type traceLogBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *traceLogBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *traceLogBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTracePropagatesRouterToPrimary is the tracing acceptance test: a
// trace minted at the router for an absorb must appear in the owning
// primary's request log for the forwarded hop, tied together by the
// X-Grafics-Trace header.
func TestTracePropagatesRouterToPrimary(t *testing.T) {
	logs := &traceLogBuffer{}
	obs.SetLogger(slog.New(slog.NewTextHandler(logs, &slog.HandlerOptions{Level: slog.LevelDebug})))
	t.Cleanup(func() { obs.SetLogger(nil) })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, pSrv, _, pool := startPrimary(t, ctx, "alpha", 21, PrimaryOptions{})

	router, err := NewRouter(RouterOptions{
		Groups:         [][]string{{pSrv.URL}},
		HealthInterval: 100 * time.Millisecond,
		HTTPTimeout:    5 * time.Second,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	router.Start(ctx)
	t.Cleanup(router.Stop)
	rSrv := newTestServer(t, router)
	waitFor(t, 20*time.Second, "router sees the primary", func() bool {
		fs := router.fleetStatus()
		return len(fs.Groups) == 1 && fs.Groups[0].Primary == pSrv.URL
	})

	rec, _ := uniqueScan(pool[0], 1)
	body := `{"id":"` + rec.ID + `","readings":[`
	parts := make([]string, 0, len(rec.Readings))
	for _, rd := range rec.Readings {
		parts = append(parts, `{"mac":"`+rd.MAC+`","rss":-50}`)
	}
	body += strings.Join(parts, ",") + `]}`
	resp, err := http.Post(rSrv.URL+"/v2/absorb", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v2/absorb via router: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("absorb via router: status %d", resp.StatusCode)
	}
	trace := resp.Header.Get(obs.TraceHeader)
	if trace == "" {
		t.Fatal("router response carries no trace header")
	}

	// Two log lines share the trace: the router's (which minted it,
	// origin=local) and the primary's forwarded hop (origin=header).
	var routerHop, primaryHop bool
	for _, line := range strings.Split(logs.String(), "\n") {
		if !strings.Contains(line, "trace="+trace) {
			continue
		}
		switch {
		case strings.Contains(line, "origin=local"):
			routerHop = true
		case strings.Contains(line, "origin=header"):
			primaryHop = true
			if !strings.Contains(line, "route=") {
				t.Errorf("primary hop log has no route attr: %s", line)
			}
		}
	}
	if !routerHop {
		t.Errorf("no router-side (origin=local) log line for trace %s\nlogs:\n%s", trace, logs.String())
	}
	if !primaryHop {
		t.Errorf("trace %s never reached the primary's logs (origin=header)\nlogs:\n%s", trace, logs.String())
	}
}
