package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/wal"
)

// Client speaks the fleet replication and admin protocol to one node.
type Client struct {
	base string
	hc   *http.Client
	// reqTimeout bounds each individual request — headers and body —
	// independently of the caller's context. A follower's sync loop runs
	// under a context that lives for the whole process; without a
	// per-request deadline one blackholed FetchWAL would stall that loop
	// forever instead of failing into the retry/backoff path.
	reqTimeout time.Duration
}

// NewClient targets a node's base URL (scheme://host:port, no trailing
// slash required). timeout bounds each request end to end (0 means
// defaultHTTPTimeout).
func NewClient(base string, timeout time.Duration) *Client {
	return NewClientWith(base, timeout, nil)
}

// NewClientWith is NewClient with an explicit transport — the
// fault-injection seam (internal/fault.Transport) and the hook for
// custom dialers. A nil transport means http.DefaultTransport.
func NewClientWith(base string, timeout time.Duration, rt http.RoundTripper) *Client {
	return &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         &http.Client{Transport: rt},
		reqTimeout: nonZero(timeout, defaultHTTPTimeout),
	}
}

// Base returns the node URL this client targets.
func (c *Client) Base() string { return c.base }

// do issues one request under the client's per-request deadline. The
// deadline covers the body too: the returned response's Close releases
// the timer, and a stalled body read is cancelled with the request.
func (c *Client) do(ctx context.Context, method, path string) (*http.Response, error) {
	rctx, cancel := context.WithTimeout(ctx, c.reqTimeout)
	req, err := http.NewRequestWithContext(rctx, method, c.base+path, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelOnClose ties a response body to its request's timeout context,
// so closing the body releases the deadline timer.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelOnClose) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	return c.do(ctx, http.MethodGet, path)
}

func (c *Client) post(ctx context.Context, path string) (*http.Response, error) {
	return c.do(ctx, http.MethodPost, path)
}

// drainError turns a non-2xx response into an error carrying the body.
func drainError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("fleet: %s %s: %s", resp.Request.Method, resp.Request.URL.Path,
		strings.TrimSpace(resp.Status+" "+string(body)))
}

// Status fetches GET /v2/repl/status.
func (c *Client) Status(ctx context.Context) (ReplStatus, error) {
	resp, err := c.get(ctx, "/v2/repl/status")
	if err != nil {
		return ReplStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ReplStatus{}, drainError(resp)
	}
	var st ReplStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<22)).Decode(&st); err != nil {
		return ReplStatus{}, fmt.Errorf("fleet: decode status: %w", err)
	}
	return st, nil
}

// WALChunk is one shipped span of raw journal bytes.
type WALChunk struct {
	Data []byte
	// Epoch echoes the primary's current epoch.
	Epoch string
	// Source is the primary's committed append position at serve time.
	Source wal.Position
	// SegDone reports that the chunk reaches the end of a finished
	// segment; the follower advances to {Seg+1, 0} after consuming it.
	SegDone bool
}

// Ack carries the follower's durable mirror watermark to the primary.
type Ack struct {
	ID    string
	Epoch string
	Pos   wal.Position
}

// FetchWAL requests committed journal bytes from pos under epoch. An
// upstream epoch change surfaces as ErrEpochGone (wrapped with the new
// epoch when the primary reported one).
func (c *Client) FetchWAL(ctx context.Context, epoch string, pos wal.Position, ack Ack) (WALChunk, error) {
	q := url.Values{}
	q.Set("seg", strconv.Itoa(pos.Seg))
	q.Set("off", strconv.FormatInt(pos.Off, 10))
	q.Set("epoch", epoch)
	if ack.ID != "" {
		q.Set("id", ack.ID)
		q.Set("ackepoch", ack.Epoch)
		q.Set("ackseg", strconv.Itoa(ack.Pos.Seg))
		q.Set("ackoff", strconv.FormatInt(ack.Pos.Off, 10))
	}
	resp, err := c.get(ctx, "/v2/repl/wal?"+q.Encode())
	if err != nil {
		return WALChunk{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return WALChunk{}, fmt.Errorf("upstream epoch now %q: %w", resp.Header.Get(headerEpoch), ErrEpochGone)
	default:
		return WALChunk{}, drainError(resp)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, replMaxChunk+1))
	if err != nil {
		return WALChunk{}, fmt.Errorf("fleet: read wal chunk: %w", err)
	}
	ch := WALChunk{
		Data:    data,
		Epoch:   resp.Header.Get(headerEpoch),
		SegDone: resp.Header.Get(headerSegDone) == "1",
	}
	ch.Source.Seg, _ = strconv.Atoi(resp.Header.Get(headerSrcSeg))
	ch.Source.Off, _ = strconv.ParseInt(resp.Header.Get(headerSrcOff), 10, 64)
	return ch, nil
}

// Snapshot streams GET /v2/repl/snapshot into destDir and returns the
// WAL epoch and position the snapshot covers.
func (c *Client) Snapshot(ctx context.Context, destDir string) (epoch string, pos wal.Position, err error) {
	resp, err := c.get(ctx, "/v2/repl/snapshot")
	if err != nil {
		return "", wal.Position{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", wal.Position{}, drainError(resp)
	}
	epoch = resp.Header.Get(headerEpoch)
	pos.Seg, _ = strconv.Atoi(resp.Header.Get(headerSeg))
	pos.Off, _ = strconv.ParseInt(resp.Header.Get(headerOff), 10, 64)
	if epoch == "" {
		return "", wal.Position{}, fmt.Errorf("fleet: snapshot response missing epoch")
	}
	if err := untarDir(resp.Body, destDir); err != nil {
		return "", wal.Position{}, fmt.Errorf("fleet: restore snapshot: %w", err)
	}
	return epoch, pos, nil
}

// Promote asks a node to take over as primary (POST /v2/admin/promote).
func (c *Client) Promote(ctx context.Context) (PromoteResult, error) {
	resp, err := c.post(ctx, "/v2/admin/promote")
	if err != nil {
		return PromoteResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return PromoteResult{}, drainError(resp)
	}
	var res PromoteResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&res); err != nil {
		return PromoteResult{}, fmt.Errorf("fleet: decode promote result: %w", err)
	}
	return res, nil
}

// Follow re-points a follower at a new primary (POST /v2/admin/follow).
func (c *Client) Follow(ctx context.Context, primary string) error {
	q := url.Values{}
	q.Set("primary", primary)
	resp, err := c.post(ctx, "/v2/admin/follow?"+q.Encode())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return drainError(resp)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return nil
}
