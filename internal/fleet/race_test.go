package fleet

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/portfolio"
	"repro/internal/wal"
)

// TestFollowerApplyRacesHotSwap exercises the follower-apply path
// (lifecycle.ApplyRecord absorbing shipped records into the portfolio)
// racing a refit-style ReplaceSystem hot-swap, concurrent Save
// snapshots, and classify reads. Run under -race, it proves the
// portfolio's locking covers the replication data path: followers keep
// serving and applying while their models are swapped underneath them.
func TestFollowerApplyRacesHotSwap(t *testing.T) {
	ctx := context.Background()
	train, pool := campus(t, "alpha", 11)
	cfg := fastConfig()
	p := portfolio.New(cfg)
	if err := p.AddBuilding("alpha", train); err != nil {
		t.Fatalf("AddBuilding: %v", err)
	}
	// A second fitted system to swap against, as a lifecycle refit would.
	spare := core.New(cfg)
	if err := spare.AddTraining(train); err != nil {
		t.Fatalf("AddTraining: %v", err)
	}
	if err := spare.FitCtx(ctx); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	orig, err := p.System("alpha")
	if err != nil {
		t.Fatalf("System: %v", err)
	}

	const iters = 60
	saveDir := t.TempDir()
	var wg sync.WaitGroup
	wg.Add(4)
	// Follower-apply path: absorb shipped records.
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			rec, _ := uniqueScan(pool[i%len(pool)], i)
			r := wal.Record{Building: "alpha", Scan: rec}
			if err := lifecycle.ApplyRecord(ctx, p, r); err != nil {
				t.Errorf("ApplyRecord %d: %v", i, err)
				return
			}
		}
	}()
	// Refit path: hot-swap the live system back and forth.
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			sys := spare
			if i%2 == 1 {
				sys = orig
			}
			if err := p.ReplaceSystem("alpha", sys); err != nil {
				t.Errorf("ReplaceSystem %d: %v", i, err)
				return
			}
		}
	}()
	// Snapshot path: persist while both of the above mutate.
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := p.Save(saveDir); err != nil {
				t.Errorf("Save %d: %v", i, err)
				return
			}
		}
	}()
	// Read path: classify throughout.
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := p.ClassifyRouted(ctx, &pool[i%len(pool)]); err != nil {
				t.Errorf("ClassifyRouted %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	// The saved snapshot is loadable after all the churn.
	restored, err := portfolio.LoadPortfolio(saveDir, cfg)
	if err != nil {
		t.Fatalf("LoadPortfolio after churn: %v", err)
	}
	if got := restored.Buildings(); len(got) != 1 || got[0] != "alpha" {
		t.Fatalf("restored buildings: %v", got)
	}
}
