// Chaos suite: each test injects one class of real-world failure —
// network partition, slow replica disk, full primary disk, torn write
// plus crash — into a live mini-fleet under traffic, and asserts the
// two invariants the hardening work exists to protect: no absorb that
// was acknowledged with 200 is ever lost, and the fleet converges back
// to healthy once the fault clears. Faults come from internal/fault
// through the seams the production code exposes (wal.Options.OpenFile,
// FollowerOptions.Transport/OpenMirror), so the code under test is
// byte-for-byte the code that ships.

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/wal"
)

// mustHost extracts the host:port a fault.Transport partitions on.
func mustHost(t *testing.T, rawURL string) string {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatalf("parse %q: %v", rawURL, err)
	}
	return u.Host
}

// startFollowerOpts boots a follower with chaos seams injected.
func startFollowerOpts(t *testing.T, ctx context.Context, primaryURL string, fo FollowerOptions) (*Node, *httptest.Server) {
	t.Helper()
	fo.Primary = primaryURL
	fo.Config = fastConfig()
	if fo.PollInterval == 0 {
		fo.PollInterval = 25 * time.Millisecond
	}
	fo.Logf = t.Logf
	node, err := NewFollowerNode(ctx, NodeOptions{
		StateDir: t.TempDir(),
		Follower: fo,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("NewFollowerNode: %v", err)
	}
	node.Start(ctx)
	t.Cleanup(func() { node.Close() })
	srv := httptest.NewServer(node)
	t.Cleanup(srv.Close)
	return node, srv
}

// postAbsorb sends one absorb and returns the raw response (callers
// check status and headers; body is drained and closed).
func postAbsorb(t *testing.T, base string, rec *dataset.Record) *http.Response {
	t.Helper()
	body, err := json.Marshal(map[string]any{"id": rec.ID, "readings": rec.Readings})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+"/v2/absorb", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v2/absorb: %v", err)
	}
	resp.Body.Close()
	return resp
}

// hasAllMACs reports whether every MAC is present in the named system.
func hasAllMACs(t *testing.T, n *Node, building string, macs []string) bool {
	t.Helper()
	sys, err := n.Portfolio().System(building)
	if err != nil {
		return false
	}
	for _, mac := range macs {
		if !sys.HasMAC(mac) {
			return false
		}
	}
	return true
}

// TestChaosPartitionHealsAndConverges cuts the network between a
// follower and its primary mid-traffic. The primary must keep acking
// absorbs (availability of the write path does not depend on one
// replica), the follower must notice it is stale and stop reporting
// Ready, and after the partition heals every absorb acked during the
// outage must appear on the follower.
func TestChaosPartitionHealsAndConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e skipped in -short")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	_, pSrv, _, pool := startPrimary(t, ctx, "alpha", 21, PrimaryOptions{})
	host := mustHost(t, pSrv.URL)
	ft := fault.NewTransport(nil, 21)
	fNode, _ := startFollowerOpts(t, ctx, pSrv.URL, FollowerOptions{
		Transport:  ft,
		StaleAfter: 250 * time.Millisecond,
	})
	waitFor(t, 20*time.Second, "follower ready", func() bool { return fNode.ReplInfo().Ready })

	var acked []string
	absorb := func(i int) {
		rec, mac := uniqueScan(pool[i%len(pool)], i)
		if resp := postAbsorb(t, pSrv.URL, &rec); resp.StatusCode == http.StatusOK {
			acked = append(acked, mac)
		} else {
			t.Fatalf("absorb %d: status %d", i, resp.StatusCode)
		}
	}
	for i := 0; i < 5; i++ {
		absorb(i)
	}
	waitFor(t, 20*time.Second, "pre-partition absorbs replicated", func() bool {
		return hasAllMACs(t, fNode, "alpha", acked)
	})

	ft.Partition(host)
	// The primary keeps acknowledging writes throughout the outage.
	for i := 100; i < 110; i++ {
		absorb(i)
	}
	waitFor(t, 20*time.Second, "follower to report stale", func() bool {
		return !fNode.ReplInfo().Ready
	})

	ft.HealPartition()
	waitFor(t, 30*time.Second, "follower to converge after heal", func() bool {
		return fNode.ReplInfo().Ready && hasAllMACs(t, fNode, "alpha", acked)
	})
	t.Logf("partition healed: all %d acked absorbs converged onto the follower", len(acked))

	// Injected faults are observable: every cut connection incremented
	// the fault counter, visible on the process metrics scrape.
	rr := httptest.NewRecorder()
	obs.Default().Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v2/metrics", nil))
	if !strings.Contains(rr.Body.String(), `grafics_fault_injected_total{kind="http_cut"}`) {
		t.Error("scrape missing grafics_fault_injected_total{kind=\"http_cut\"} after a partition")
	}
}

// TestChaosSlowDiskFollowerFallsBehindAndRecovers injects fsync latency
// into a follower's mirror disk. Under sustained absorb traffic the
// follower visibly falls behind (replication is durable-before-apply,
// so a slow disk is a slow replica); once the disk heals it catches up
// and every acked absorb is present.
func TestChaosSlowDiskFollowerFallsBehindAndRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e skipped in -short")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	_, pSrv, _, pool := startPrimary(t, ctx, "beta", 33, PrimaryOptions{})
	disk := fault.NewDisk()
	fNode, _ := startFollowerOpts(t, ctx, pSrv.URL, FollowerOptions{
		StaleAfter: time.Minute, // isolate the lag signal from staleness
		OpenMirror: func(name string, flag int, perm os.FileMode) (MirrorFile, error) {
			return disk.OpenFile(name, flag, perm)
		},
	})
	waitFor(t, 20*time.Second, "follower ready", func() bool { return fNode.ReplInfo().Ready })

	disk.SlowSync(300 * time.Millisecond)
	var acked []string
	fellBehind := false
	deadline := time.Now().Add(20 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		rec, mac := uniqueScan(pool[i%len(pool)], i)
		if resp := postAbsorb(t, pSrv.URL, &rec); resp.StatusCode == http.StatusOK {
			acked = append(acked, mac)
		}
		ri := fNode.ReplInfo()
		if ri.LagBytes > 0 || !hasAllMACs(t, fNode, "beta", acked) {
			fellBehind = true
		}
		if fellBehind && len(acked) >= 10 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !fellBehind {
		t.Fatal("follower never fell behind despite a 300ms-per-fsync mirror disk")
	}
	if len(acked) < 10 {
		t.Fatalf("only %d absorbs acked", len(acked))
	}

	disk.Heal()
	waitFor(t, 30*time.Second, "slow-disk follower to catch up", func() bool {
		ri := fNode.ReplInfo()
		return ri.Ready && ri.LagBytes == 0 && hasAllMACs(t, fNode, "beta", acked)
	})
	t.Logf("slow disk healed: all %d acked absorbs applied", len(acked))
}

// TestChaosDiskFullPrimaryDegradesAndResumes fills up the primary's WAL
// disk. The primary must enter degraded read-only mode — absorbs answer
// 503 with a Retry-After, reads keep answering 200, healthz reports
// "degraded" — and resume write service on its own once space returns.
// A crash-restart at the end proves no acked absorb was lost to the
// full disk.
func TestChaosDiskFullPrimaryDegradesAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e skipped in -short")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	train, pool := campus(t, "gamma", 55)
	dir := t.TempDir()
	disk := fault.NewDisk()
	m, err := lifecycle.Open(fastConfig(), lifecycle.Options{
		StateDir:          dir,
		Logf:              t.Logf,
		DegradedThreshold: 2,
		DegradedProbe:     100 * time.Millisecond,
		WAL: wal.Options{
			OpenFile: func(name string, flag int, perm os.FileMode) (wal.File, error) {
				return disk.OpenFile(name, flag, perm)
			},
		},
	})
	if err != nil {
		t.Fatalf("lifecycle.Open: %v", err)
	}
	if err := m.Portfolio().AddBuilding("gamma", train); err != nil {
		t.Fatalf("AddBuilding: %v", err)
	}
	if err := m.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	node, err := NewPrimaryNode(ctx, m, NodeOptions{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("NewPrimaryNode: %v", err)
	}
	srv := httptest.NewServer(node)
	defer srv.Close()

	var acked []string
	rec, mac := uniqueScan(pool[0], 0)
	if resp := postAbsorb(t, srv.URL, &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy absorb: status %d", resp.StatusCode)
	}
	acked = append(acked, mac)

	// Disk full: the journal refuses every byte from here.
	disk.LimitBytes(0)
	for i := 1; i <= 2; i++ {
		rec, _ := uniqueScan(pool[i], i)
		if resp := postAbsorb(t, srv.URL, &rec); resp.StatusCode == http.StatusOK {
			t.Fatalf("absorb %d acked with a full disk", i)
		}
	}

	// Threshold crossed: degraded read-only mode. Absorbs shed with 503
	// + Retry-After without touching the disk; reads answer; healthz
	// says "degraded" but stays 200 (the node still serves reads).
	rec3, _ := uniqueScan(pool[3], 3)
	resp := postAbsorb(t, srv.URL, &rec3)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded absorb: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 missing Retry-After")
	}
	if status, _ := postClassify(t, srv.URL, "/v2/classify", &pool[4], false); status != http.StatusOK {
		t.Fatalf("read while degraded: status %d", status)
	}
	hresp, err := http.Get(srv.URL + "/v2/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || health["status"] != "degraded" {
		t.Fatalf("healthz while degraded: status %d, body %v", hresp.StatusCode, health)
	}

	// Space returns: the next probe absorb restores write service.
	disk.Heal()
	waitFor(t, 20*time.Second, "write service to resume", func() bool {
		rec, mac := uniqueScan(pool[5], 500)
		if resp := postAbsorb(t, srv.URL, &rec); resp.StatusCode != http.StatusOK {
			return false
		}
		acked = append(acked, mac)
		return true
	})
	if degraded, _ := m.Degraded(); degraded {
		t.Fatal("manager still degraded after successful absorbs")
	}

	// Crash-restart audit: abandon the manager (no shutdown hooks) and
	// reopen from disk. Every acked absorb must replay back.
	srv.Close()
	m2, err := lifecycle.Open(fastConfig(), lifecycle.Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer m2.Close()
	sys, err := m2.Portfolio().System("gamma")
	if err != nil {
		t.Fatalf("System after restart: %v", err)
	}
	for _, mac := range acked {
		if !sys.HasMAC(mac) {
			t.Errorf("acked absorb lost across disk-full + restart: %s", mac)
		}
	}
	t.Logf("disk-full cycle preserved all %d acked absorbs", len(acked))
}

// TestChaosTornWriteCrashRestart tears a WAL frame mid-write (the
// power-cut-during-append story), then crash-restarts the manager. The
// torn absorb was never acked, so it owes nothing; every absorb acked
// before and after the tear must replay back, and the replay itself
// must treat the torn bytes as crash debris rather than corruption.
func TestChaosTornWriteCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e skipped in -short")
	}
	train, pool := campus(t, "delta", 77)
	dir := t.TempDir()
	disk := fault.NewDisk()
	m, err := lifecycle.Open(fastConfig(), lifecycle.Options{
		StateDir: dir,
		Logf:     t.Logf,
		WAL: wal.Options{
			OpenFile: func(name string, flag int, perm os.FileMode) (wal.File, error) {
				return disk.OpenFile(name, flag, perm)
			},
		},
	})
	if err != nil {
		t.Fatalf("lifecycle.Open: %v", err)
	}
	if err := m.Portfolio().AddBuilding("delta", train); err != nil {
		t.Fatalf("AddBuilding: %v", err)
	}
	if err := m.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	ctx := context.Background()
	var acked []string
	absorb := func(i int) error {
		rec, mac := uniqueScan(pool[i%len(pool)], i)
		_, err := m.Classify(ctx, &rec, core.WithAbsorb())
		if err == nil {
			acked = append(acked, mac)
		}
		return err
	}
	for i := 0; i < 5; i++ {
		if err := absorb(i); err != nil {
			t.Fatalf("absorb %d: %v", i, err)
		}
	}

	// Tear the very next journal write in half.
	disk.TearWriteAfter(0)
	if err := absorb(5); err == nil {
		t.Fatal("torn-write absorb was acked")
	}
	// Subsequent absorbs land in a fresh segment past the poisoned one.
	for i := 6; i < 9; i++ {
		if err := absorb(i); err != nil {
			t.Fatalf("absorb %d after tear: %v", i, err)
		}
	}

	// Crash: abandon the manager, reopen from disk (no fault hook — the
	// torn bytes are already on disk; recovery must cope with them).
	m2, err := lifecycle.Open(fastConfig(), lifecycle.Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer m2.Close()
	sys, err := m2.Portfolio().System("delta")
	if err != nil {
		t.Fatalf("System after restart: %v", err)
	}
	for _, mac := range acked {
		if !sys.HasMAC(mac) {
			t.Errorf("acked absorb lost across torn write + restart: %s", mac)
		}
	}
	t.Logf("torn-write crash preserved all %d acked absorbs", len(acked))
}
