package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring consistent-hashes string keys (building names) onto members
// (shard group keys). Each member projects VirtualNodes points onto a
// 64-bit circle; a key belongs to the first point at or after its hash.
// Adding or removing one member only moves the keys that hashed to its
// points — the property that makes rebalance plans small.
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over members with the given number of virtual
// nodes per member (0 means a sensible default). Member order does not
// matter; the ring is fully determined by the member set.
func NewRing(members []string, virtualNodes int) *Ring {
	if virtualNodes <= 0 {
		virtualNodes = defaultVirtualNodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(members)*virtualNodes)}
	for _, m := range members {
		for i := 0; i < virtualNodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(m + "#" + strconv.Itoa(i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the distinct member set, sorted.
func (r *Ring) Members() []string {
	seen := make(map[string]struct{})
	for _, p := range r.points {
		seen[p.member] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
