package fleet

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/lifecycle"
	"repro/internal/portfolio"
	"repro/internal/server"
)

// Primary wraps a lifecycle.Manager as the write-side of a replicated
// shard. Reads pass straight through. Writes (absorbs, MAC retirements)
// additionally wait — when MinSyncAcks > 0 — until enough followers have
// durably mirrored the journaled record, so a positive response survives
// the primary's death.
type Primary struct {
	m       *lifecycle.Manager
	src     *Source
	minAcks int
	ackWait time.Duration
	// lifeCtx bounds semi-sync waits on code paths that have no request
	// context of their own (the Router interface's RemoveMAC).
	lifeCtx context.Context
}

// PrimaryOptions tunes semi-synchronous replication.
type PrimaryOptions struct {
	// MinSyncAcks is how many followers must mirror a write before it is
	// acknowledged. 0 (the default) replicates asynchronously.
	MinSyncAcks int
	// AckTimeout bounds the wait; on expiry the write is still durable
	// locally but the client gets ErrReplicationLag.
	AckTimeout time.Duration
}

var _ server.Router = (*Primary)(nil)

// NewPrimary builds the primary role over an already-open manager.
// lifeCtx should span the process (or test) lifetime.
func NewPrimary(lifeCtx context.Context, m *lifecycle.Manager, src *Source, opts PrimaryOptions) *Primary {
	return &Primary{
		m:       m,
		src:     src,
		minAcks: opts.MinSyncAcks,
		ackWait: nonZero(opts.AckTimeout, defaultAckTimeout),
		lifeCtx: lifeCtx,
	}
}

// Manager exposes the underlying lifecycle manager (admin surface,
// shutdown snapshotting).
func (pr *Primary) Manager() *lifecycle.Manager { return pr.m }

// waitReplicated gates a just-journaled write on the follower quorum.
// The position is read after the write, so waiting for it covers the
// write's record (and possibly later ones, which only strengthens the
// guarantee).
func (pr *Primary) waitReplicated(ctx context.Context) error {
	if pr.minAcks <= 0 {
		return nil
	}
	epoch, pos, ok := pr.m.WALPosition()
	if !ok {
		return nil
	}
	start := time.Now()
	err := pr.src.WaitReplicated(ctx, epoch, pos, pr.minAcks, pr.ackWait)
	ackWaitSeconds.Observe(time.Since(start).Seconds())
	return err
}

func (pr *Primary) ClassifyRouted(ctx context.Context, rec *dataset.Record, opts ...core.Option) (portfolio.Routed, error) {
	routed, err := pr.m.ClassifyRouted(ctx, rec, opts...)
	if err == nil && core.NewRequest(rec, opts...).Absorb() {
		err = pr.waitReplicated(ctx)
	}
	return routed, err
}

func (pr *Primary) ClassifyRoutedBatch(ctx context.Context, records []dataset.Record, opts ...core.Option) ([]portfolio.Routed, []error) {
	routed, errs := pr.m.ClassifyRoutedBatch(ctx, records, opts...)
	if core.NewRequest(nil, opts...).Absorb() {
		// One wait covers the whole batch: the position is read after the
		// last journaled record.
		if err := pr.waitReplicated(ctx); err != nil {
			for i := range errs {
				if errs[i] == nil {
					errs[i] = err
				}
			}
		}
	}
	return routed, errs
}

func (pr *Primary) RemoveMAC(mac string) (int, error) {
	n, err := pr.m.RemoveMAC(mac)
	if err == nil && n > 0 {
		err = pr.waitReplicated(pr.lifeCtx)
	}
	return n, err
}

// replInfo feeds /v2/healthz and /v2/stats on a primary node.
func (pr *Primary) replInfo() server.ReplInfo {
	ri := server.ReplInfo{Role: string(RolePrimary), Ready: true}
	if epoch, pos, ok := pr.m.WALPosition(); ok {
		ri.Epoch = epoch
		ri.Applied = pos
		ri.Mirrored = pos
		ri.Source = pos
	}
	if degraded, _ := pr.m.Degraded(); degraded {
		ri.Degraded = true
	}
	return ri
}
