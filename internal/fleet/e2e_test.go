package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/wal"
)

// TestKillPrimaryFailover is the tentpole acceptance test: a 3-node
// shard (primary + two followers) behind a router takes live classify
// and semi-sync absorb traffic; the primary is killed mid-traffic the
// way the daemon tests kill a node (server closed, manager abandoned
// with no shutdown hooks); the router detects the death, promotes the
// freshest follower, re-points the survivor, and classification
// continues — with every absorb that was acked before the kill present
// on the promoted primary, verified both via the portfolio and by
// replaying the shipped WAL mirror.
func TestKillPrimaryFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("failover e2e skipped in -short")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Semi-sync primary: an absorb is acked only after >=1 follower has
	// durably mirrored it — the invariant the kill must not break.
	_, pSrv, _, pool := startPrimary(t, ctx, "alpha", 9,
		PrimaryOptions{MinSyncAcks: 1, AckTimeout: 10 * time.Second})
	f1, f1Srv := startFollower(t, ctx, pSrv.URL)
	f2, f2Srv := startFollower(t, ctx, pSrv.URL)
	waitFor(t, 20*time.Second, "both followers ready", func() bool {
		return f1.ReplInfo().Ready && f2.ReplInfo().Ready
	})

	router, err := NewRouter(RouterOptions{
		Groups:         [][]string{{pSrv.URL, f1Srv.URL, f2Srv.URL}},
		HealthInterval: 100 * time.Millisecond,
		FailThreshold:  3,
		HTTPTimeout:    2 * time.Second,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	router.Start(ctx)
	t.Cleanup(router.Stop)
	rSrv := newTestServer(t, router)
	waitFor(t, 20*time.Second, "router sees a healthy primary", func() bool {
		fs := router.fleetStatus()
		return len(fs.Groups) == 1 && fs.Groups[0].Primary == pSrv.URL
	})

	// Live traffic: absorbs with unique MACs plus interleaved reads.
	// Only 200-acked absorbs enter the must-survive set.
	var mu sync.Mutex
	acked := make(map[string]bool)
	stopTraffic := make(chan struct{})
	var traffic sync.WaitGroup
	traffic.Add(1)
	go func() {
		defer traffic.Done()
		for i := 0; ; i++ {
			select {
			case <-stopTraffic:
				return
			default:
			}
			rec, mac := uniqueScan(pool[i%len(pool)], i)
			status := postClassifyQuiet(rSrv.URL, "/v2/absorb", &rec)
			if status == http.StatusOK {
				mu.Lock()
				acked[mac] = true
				mu.Unlock()
			}
			postClassifyQuiet(rSrv.URL, "/v2/classify", &pool[(i+1)%len(pool)])
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Let traffic flow, then kill the primary mid-stream.
	waitFor(t, 20*time.Second, "some absorbs acked pre-kill", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(acked) >= 5
	})
	pSrv.Close() // SIGKILL stand-in: no drain, no snapshot, manager abandoned

	// The router must promote a follower and classification must
	// continue through it.
	var promoted *Node
	waitFor(t, 45*time.Second, "router to promote a follower", func() bool {
		fs := router.fleetStatus()
		p := fs.Groups[0].Primary
		switch p {
		case f1Srv.URL:
			promoted = f1
		case f2Srv.URL:
			promoted = f2
		default:
			return false
		}
		return promoted.Role() == RolePrimary
	})
	waitFor(t, 30*time.Second, "absorbs to succeed via the new primary", func() bool {
		rec, mac := uniqueScan(pool[3], 90000)
		status := postClassifyQuiet(rSrv.URL, "/v2/absorb", &rec)
		if status != http.StatusOK {
			return false
		}
		mu.Lock()
		acked[mac] = true
		mu.Unlock()
		return true
	})
	close(stopTraffic)
	traffic.Wait()

	// Reads still answer through the router.
	if status := postClassifyQuiet(rSrv.URL, "/v2/classify", &pool[5]); status != http.StatusOK {
		t.Fatalf("post-failover classify: status %d", status)
	}

	// Every acked absorb survived onto the promoted primary.
	sys, err := promoted.Portfolio().System("alpha")
	if err != nil {
		t.Fatalf("System on promoted node: %v", err)
	}
	mu.Lock()
	macs := make([]string, 0, len(acked))
	for mac := range acked {
		macs = append(macs, mac)
	}
	mu.Unlock()
	if len(macs) < 6 {
		t.Fatalf("too few acked absorbs to prove anything: %d", len(macs))
	}
	lost := 0
	for _, mac := range macs {
		if !sys.HasMAC(mac) {
			lost++
			t.Errorf("acked absorb lost across failover: %s", mac)
		}
	}
	if lost > 0 {
		t.Fatalf("%d/%d acked absorbs lost", lost, len(macs))
	}
	t.Logf("failover preserved all %d acked absorbs", len(macs))

	// Independent audit: replay the promoted node's shipped-WAL mirror
	// end to end (the followers bootstrapped at position 0:0, so the
	// whole mirror is frames). Every record the mirror holds must have
	// been applied — the promotion already verified counts; here we
	// additionally check the journal bytes themselves survived the kill
	// intact.
	mirrorDir := filepath.Join(promoted.opts.Follower.StateDir, "mirror")
	records := 0
	if _, n, err := wal.ReplayFrom(mirrorDir, wal.Position{}, func(wal.Record) error {
		records++
		return nil
	}); err != nil {
		t.Fatalf("replaying shipped mirror: %v", err)
	} else if n != records || records == 0 {
		t.Fatalf("mirror replay: %d records (n=%d)", records, n)
	}
	t.Logf("shipped WAL mirror replays %d records cleanly", records)

	// Shutdown: the promoted node owns a manager now.
	if m := promoted.Manager(); m != nil {
		if err := m.Close(); err != nil {
			t.Fatalf("close promoted manager: %v", err)
		}
	}
}

// postClassifyQuiet posts a scan without test plumbing, for traffic
// loops that tolerate failures.
func postClassifyQuiet(base, path string, rec *dataset.Record) int {
	body, err := json.Marshal(map[string]any{"id": rec.ID, "readings": rec.Readings})
	if err != nil {
		return 0
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode
}

// newTestServer serves h and closes it with the test.
func newTestServer(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}
