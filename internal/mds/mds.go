// Package mds implements multidimensional scaling for the MDS+Prox
// baseline of the GRAFICS evaluation (§VI-A): classical (Torgerson) MDS via
// double centering and a power-iteration eigensolver, plus the iterative
// SMACOF stress-majorization variant. The paper's setup uses the pairwise
// dissimilarity 1 − cosine(a, b) over fingerprint vectors, provided here as
// CosineDissimilarity.
package mds

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// CosineDissimilarity builds the n×n matrix with entries
// 1 − cosine(rows[i], rows[j]).
func CosineDissimilarity(rows [][]float64) (*linalg.Matrix, error) {
	n := len(rows)
	for i := 0; i < n; i++ {
		if len(rows[i]) != len(rows[0]) {
			return nil, fmt.Errorf("mds: row %d has %d cols, want %d: %w", i, len(rows[i]), len(rows[0]), linalg.ErrDimensionMismatch)
		}
	}
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := 1 - linalg.CosineSimilarity(rows[i], rows[j])
			m.Set(i, j, d)
			m.Set(j, i, d)
		}
	}
	return m, nil
}

// Classical performs Torgerson MDS: square the dissimilarities, double
// center, and embed with the top-k eigenpairs. Negative eigenvalues
// (non-Euclidean dissimilarities) contribute zero coordinates, the standard
// convention.
func Classical(diss *linalg.Matrix, k int, seed int64) ([][]float64, error) {
	if diss.Rows != diss.Cols {
		return nil, fmt.Errorf("mds: dissimilarity matrix %dx%d not square: %w", diss.Rows, diss.Cols, linalg.ErrDimensionMismatch)
	}
	n := diss.Rows
	if k <= 0 || k > n {
		return nil, fmt.Errorf("mds: k=%d outside [1,%d]", k, n)
	}
	b := diss.Clone()
	for i := range b.Data {
		b.Data[i] *= b.Data[i]
	}
	b.DoubleCenter()
	opts := linalg.DefaultEigenOptions()
	opts.Seed = seed
	vals, vecs, err := linalg.TopEigen(b, k, opts)
	if err != nil {
		return nil, fmt.Errorf("mds: eigensolve: %w", err)
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, k)
	}
	for p := 0; p < k; p++ {
		if vals[p] <= 0 {
			continue
		}
		scale := math.Sqrt(vals[p])
		for i := 0; i < n; i++ {
			out[i][p] = scale * vecs[p][i]
		}
	}
	return out, nil
}

// SMACOFOptions configures the SMACOF iteration.
type SMACOFOptions struct {
	MaxIter int
	// Eps stops iteration when the relative stress improvement drops
	// below it.
	Eps  float64
	Seed int64
}

// DefaultSMACOFOptions returns sensible defaults.
func DefaultSMACOFOptions() SMACOFOptions {
	return SMACOFOptions{MaxIter: 200, Eps: 1e-6, Seed: 1}
}

// SMACOF minimizes raw stress Σ (d_ij − δ_ij)² by majorization, returning
// k-dimensional coordinates. It handles non-Euclidean dissimilarities more
// gracefully than classical MDS at higher cost per iteration.
func SMACOF(diss *linalg.Matrix, k int, opts SMACOFOptions) ([][]float64, float64, error) {
	if diss.Rows != diss.Cols {
		return nil, 0, fmt.Errorf("mds: dissimilarity matrix %dx%d not square: %w", diss.Rows, diss.Cols, linalg.ErrDimensionMismatch)
	}
	n := diss.Rows
	if k <= 0 || (n > 0 && k > n) {
		return nil, 0, fmt.Errorf("mds: k=%d outside [1,%d]", k, n)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200
	}
	if opts.Eps <= 0 {
		opts.Eps = 1e-6
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, k)
		for d := range x[i] {
			x[i][d] = rng.NormFloat64()
		}
	}
	dist := func(a, b []float64) float64 { return linalg.Distance(a, b) }
	stress := func(x [][]float64) float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := dist(x[i], x[j]) - diss.At(i, j)
				s += d * d
			}
		}
		return s
	}
	prev := stress(x)
	next := make([][]float64, n)
	for i := range next {
		next[i] = make([]float64, k)
	}
	for it := 0; it < opts.MaxIter; it++ {
		// Guttman transform with uniform weights: X' = (1/n) B(X) X.
		for i := range next {
			for d := range next[i] {
				next[i][d] = 0
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				dij := dist(x[i], x[j])
				var ratio float64
				if dij > 1e-12 {
					ratio = diss.At(i, j) / dij
				}
				for d := 0; d < k; d++ {
					next[i][d] += ratio * (x[i][d] - x[j][d])
				}
			}
		}
		inv := 1 / float64(n)
		for i := range next {
			for d := range next[i] {
				next[i][d] *= inv
			}
		}
		x, next = next, x
		cur := stress(x)
		if prev-cur < opts.Eps*(prev+1e-12) {
			prev = cur
			break
		}
		prev = cur
	}
	return x, prev, nil
}
