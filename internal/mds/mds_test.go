package mds

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

func TestCosineDissimilarity(t *testing.T) {
	rows := [][]float64{{1, 0}, {0, 1}, {1, 0}}
	m, err := CosineDissimilarity(rows)
	if err != nil {
		t.Fatalf("CosineDissimilarity: %v", err)
	}
	if m.At(0, 1) != 1 {
		t.Errorf("orthogonal dissimilarity = %v, want 1", m.At(0, 1))
	}
	if m.At(0, 2) != 0 {
		t.Errorf("identical dissimilarity = %v, want 0", m.At(0, 2))
	}
	if m.At(0, 0) != 0 {
		t.Errorf("self dissimilarity = %v, want 0", m.At(0, 0))
	}
	if _, err := CosineDissimilarity([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged rows should error")
	}
}

// pointsToDiss builds a Euclidean distance matrix from coordinates.
func pointsToDiss(pts [][]float64) *linalg.Matrix {
	n := len(pts)
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, linalg.Distance(pts[i], pts[j]))
		}
	}
	return m
}

func TestClassicalRecoversEuclideanConfig(t *testing.T) {
	// Points on a line: classical MDS must recover pairwise distances
	// exactly (up to rotation/reflection).
	pts := [][]float64{{0, 0}, {3, 0}, {7, 0}, {10, 0}}
	diss := pointsToDiss(pts)
	coords, err := Classical(diss, 2, 1)
	if err != nil {
		t.Fatalf("Classical: %v", err)
	}
	for i := range pts {
		for j := range pts {
			want := diss.At(i, j)
			got := linalg.Distance(coords[i], coords[j])
			if math.Abs(got-want) > 1e-6 {
				t.Errorf("distance(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestClassicalErrors(t *testing.T) {
	if _, err := Classical(linalg.NewMatrix(2, 3), 1, 1); err == nil {
		t.Error("non-square should error")
	}
	if _, err := Classical(linalg.NewMatrix(3, 3), 0, 1); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Classical(linalg.NewMatrix(3, 3), 4, 1); err == nil {
		t.Error("k>n should error")
	}
}

func TestSMACOFReducesStress(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {0, 1}, {5, 5}, {6, 5}, {5, 6}}
	diss := pointsToDiss(pts)
	coords, stress, err := SMACOF(diss, 2, DefaultSMACOFOptions())
	if err != nil {
		t.Fatalf("SMACOF: %v", err)
	}
	if len(coords) != len(pts) {
		t.Fatalf("coords = %d, want %d", len(coords), len(pts))
	}
	if stress > 0.5 {
		t.Errorf("final stress %v too high for embeddable config", stress)
	}
	// Cluster structure preserved: points 0-2 mutually closer than to 3-5.
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			inter := linalg.Distance(coords[i], coords[j])
			for k := 0; k < 3; k++ {
				if k == i {
					continue
				}
				if intra := linalg.Distance(coords[i], coords[k]); intra >= inter {
					t.Fatalf("SMACOF destroyed cluster structure: intra %v >= inter %v", intra, inter)
				}
			}
		}
	}
}

func TestSMACOFErrors(t *testing.T) {
	if _, _, err := SMACOF(linalg.NewMatrix(2, 3), 1, DefaultSMACOFOptions()); err == nil {
		t.Error("non-square should error")
	}
	if _, _, err := SMACOF(linalg.NewMatrix(3, 3), 0, DefaultSMACOFOptions()); err == nil {
		t.Error("k=0 should error")
	}
}
