// Package par holds the tiny fan-out helper shared by the batch
// prediction paths: run n independent tasks over a GOMAXPROCS-sized
// worker pool.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach calls fn(i) for every i in [0, n), spreading calls over up to
// GOMAXPROCS goroutines. It returns when all calls have finished. fn must
// be safe for concurrent invocation; with one worker (or n <= 1) calls
// run sequentially on the caller's goroutine.
func ForEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
