// Package par holds the tiny fan-out helpers shared by the repo's
// parallel paths: run n independent tasks over a bounded worker pool,
// with or without context-based cancellation. Callers include batch
// classification, portfolio bulk bring-up and snapshot restore, and
// Hogwild embedding training (embed.StrategyFast), which claims
// 1024-sample chunks through ForEachCtxBounded.
//
// One property here is load-bearing for the determinism contract
// (docs/determinism.md): with an effective worker count of one, every
// helper runs indices 0..n-1 sequentially, in order, on the caller's
// goroutine. embed's parity strategy — and fast mode on a single-CPU
// host — relies on that to reproduce the serial training schedule
// bit-for-bit.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach calls fn(i) for every i in [0, n), spreading calls over up to
// GOMAXPROCS goroutines. It returns when all calls have finished. fn must
// be safe for concurrent invocation; with one worker (or n <= 1) calls
// run sequentially on the caller's goroutine.
func ForEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachCtx is ForEach with cancellation: workers stop claiming new
// indices once ctx is done, so a long batch aborts promptly on timeout or
// client disconnect instead of grinding through the remaining work. fn is
// never invoked for unclaimed indices; callers that need a per-item
// verdict for every slot should record which indices ran and fill the
// rest with the returned error. ForEachCtx returns ctx.Err() as observed
// after all claimed work finished (nil when the batch completed).
func ForEachCtx(ctx context.Context, n int, fn func(i int)) error {
	return ForEachCtxBounded(ctx, n, 0, fn)
}

// ForEachCtxBounded is ForEachCtx with an explicit worker cap, for tasks
// whose per-item cost is heavy enough (model fits, snapshot loads) that
// the caller wants to bound memory or leave cores for serving traffic.
// workers <= 0 means GOMAXPROCS.
func ForEachCtxBounded(ctx context.Context, n, workers int, fn func(i int)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ForEachCtxFill is ForEachCtx for callers that need a per-index verdict
// on every slot: indices never claimed because ctx was done are passed to
// fill with the context's error, so a cancelled batch still reports a
// complete parallel error slice. Exactly one of fn(i) / fill(i, err) runs
// for each index.
func ForEachCtxFill(ctx context.Context, n int, fn func(i int), fill func(i int, err error)) error {
	return ForEachCtxFillBounded(ctx, n, 0, fn, fill)
}

// ForEachCtxFillBounded is ForEachCtxFill with an explicit worker cap
// (workers <= 0 means GOMAXPROCS).
func ForEachCtxFillBounded(ctx context.Context, n, workers int, fn func(i int), fill func(i int, err error)) error {
	started := make([]bool, n)
	err := ForEachCtxBounded(ctx, n, workers, func(i int) {
		started[i] = true
		fn(i)
	})
	if err != nil {
		for i := range started {
			if !started[i] {
				fill(i, err)
			}
		}
	}
	return err
}
