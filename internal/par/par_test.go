package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachVisitsAll(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		var hits atomic.Int64
		seen := make([]atomic.Bool, n)
		ForEach(n, func(i int) {
			hits.Add(1)
			seen[i].Store(true)
		})
		if int(hits.Load()) != n {
			t.Errorf("n=%d: %d calls", n, hits.Load())
		}
		for i := range seen {
			if !seen[i].Load() {
				t.Errorf("n=%d: index %d skipped", n, i)
			}
		}
	}
}

func TestForEachCtxCompletes(t *testing.T) {
	var hits atomic.Int64
	if err := ForEachCtx(context.Background(), 100, func(i int) { hits.Add(1) }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if hits.Load() != 100 {
		t.Errorf("%d calls, want 100", hits.Load())
	}
}

func TestForEachCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var hits atomic.Int64
	err := ForEachCtx(ctx, 10000, func(i int) { hits.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers check ctx before claiming, so a dead context runs (almost)
	// nothing: at most one in-flight claim per worker.
	if hits.Load() > 64 {
		t.Errorf("%d tasks ran under a cancelled context", hits.Load())
	}
}

func TestForEachCtxCancelsMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var hits atomic.Int64
	const n = 100000
	err := ForEachCtx(ctx, n, func(i int) {
		if hits.Add(1) == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := hits.Load(); got == n {
		t.Error("cancellation did not stop the batch")
	}
}

func TestForEachCtxFillCoversEverySlot(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 50000
	ran := make([]atomic.Int32, n)
	var calls atomic.Int64
	err := ForEachCtxFill(ctx, n, func(i int) {
		ran[i].Add(1)
		if calls.Add(1) == 5 {
			cancel()
		}
	}, func(i int, err error) {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("fill(%d) err = %v, want context.Canceled", i, err)
		}
		ran[i].Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times, want exactly once (fn xor fill)", i, got)
		}
	}
}

func TestForEachCtxBoundedWorkerCap(t *testing.T) {
	var inFlight, peak, calls atomic.Int64
	err := ForEachCtxBounded(context.Background(), 64, 3, func(i int) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		calls.Add(1)
	})
	if err != nil {
		t.Fatalf("ForEachCtxBounded: %v", err)
	}
	if calls.Load() != 64 {
		t.Errorf("calls = %d, want 64", calls.Load())
	}
	if peak.Load() > 3 {
		t.Errorf("peak concurrency %d exceeded the cap of 3", peak.Load())
	}
}

func TestForEachCtxBoundedDefaultsToGOMAXPROCS(t *testing.T) {
	var calls atomic.Int64
	if err := ForEachCtxBounded(context.Background(), 10, 0, func(i int) { calls.Add(1) }); err != nil {
		t.Fatalf("ForEachCtxBounded: %v", err)
	}
	if calls.Load() != 10 {
		t.Errorf("calls = %d, want 10", calls.Load())
	}
}

func TestForEachCtxFillBoundedCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran, filled atomic.Int64
	err := ForEachCtxFillBounded(ctx, 8, 2, func(i int) { ran.Add(1) }, func(i int, err error) {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("fill error = %v", err)
		}
		filled.Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load()+filled.Load() != 8 {
		t.Errorf("ran %d + filled %d != 8: some index got no verdict", ran.Load(), filled.Load())
	}
}
