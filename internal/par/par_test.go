package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsAll(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		var hits atomic.Int64
		seen := make([]atomic.Bool, n)
		ForEach(n, func(i int) {
			hits.Add(1)
			seen[i].Store(true)
		})
		if int(hits.Load()) != n {
			t.Errorf("n=%d: %d calls", n, hits.Load())
		}
		for i := range seen {
			if !seen[i].Load() {
				t.Errorf("n=%d: index %d skipped", n, i)
			}
		}
	}
}

func TestForEachCtxCompletes(t *testing.T) {
	var hits atomic.Int64
	if err := ForEachCtx(context.Background(), 100, func(i int) { hits.Add(1) }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if hits.Load() != 100 {
		t.Errorf("%d calls, want 100", hits.Load())
	}
}

func TestForEachCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var hits atomic.Int64
	err := ForEachCtx(ctx, 10000, func(i int) { hits.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers check ctx before claiming, so a dead context runs (almost)
	// nothing: at most one in-flight claim per worker.
	if hits.Load() > 64 {
		t.Errorf("%d tasks ran under a cancelled context", hits.Load())
	}
}

func TestForEachCtxCancelsMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var hits atomic.Int64
	const n = 100000
	err := ForEachCtx(ctx, n, func(i int) {
		if hits.Add(1) == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := hits.Load(); got == n {
		t.Error("cancellation did not stop the batch")
	}
}

func TestForEachCtxFillCoversEverySlot(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 50000
	ran := make([]atomic.Int32, n)
	var calls atomic.Int64
	err := ForEachCtxFill(ctx, n, func(i int) {
		ran[i].Add(1)
		if calls.Add(1) == 5 {
			cancel()
		}
	}, func(i int, err error) {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("fill(%d) err = %v, want context.Canceled", i, err)
		}
		ran[i].Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times, want exactly once (fn xor fill)", i, got)
		}
	}
}
