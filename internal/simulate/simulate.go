// Package simulate generates synthetic crowdsourced RF-fingerprint corpora
// with the statistical properties of the two datasets used in the GRAFICS
// paper (Microsoft's Kaggle indoor-location corpus and the authors' Hong
// Kong collection). Real traces are not redistributable, so this package is
// the documented substitution (see DESIGN.md §2): a log-distance path-loss
// radio model with per-floor attenuation, lognormal shadowing, device
// heterogeneity, and scan-size caps. These mechanisms reproduce the two
// properties the paper shows make the problem hard — small per-record MAC
// counts and low pairwise overlap (Fig. 1) — while floor attenuation
// provides the physical separability the algorithms exploit.
package simulate

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/sampling"
)

// FloorHeightM is the assumed inter-floor height in meters.
const FloorHeightM = 3.5

// Params controls corpus generation. All distances are meters and all
// signal quantities dBm/dB.
type Params struct {
	// Name labels the generated corpus.
	Name string
	// NumBuildings is the number of buildings to generate.
	NumBuildings int
	// FloorsMin and FloorsMax bound the per-building floor count
	// (inclusive).
	FloorsMin, FloorsMax int
	// SideMin and SideMax bound the square floor-plate side length.
	SideMin, SideMax float64
	// APDensityPer100m2 is the expected number of physical APs per 100 m²
	// of floor area.
	APDensityPer100m2 float64
	// MACsPerAPMin and MACsPerAPMax bound how many BSSIDs each physical
	// AP advertises (multi-SSID APs are common in malls and offices).
	MACsPerAPMin, MACsPerAPMax int
	// RecordsPerFloor is the number of crowdsourced scans per floor.
	RecordsPerFloor int

	// TxPowerDBm is the AP transmit power.
	TxPowerDBm float64
	// RefLossDB is the path loss at the 1 m reference distance.
	RefLossDB float64
	// PathLossExp is the log-distance path-loss exponent (2 free space,
	// 3-4 cluttered indoor).
	PathLossExp float64
	// FloorAttenuationDB is the extra attenuation per concrete floor
	// crossed (the "floor attenuation factor" of multi-wall multi-floor
	// models; ~13-20 dB for concrete slabs).
	FloorAttenuationDB float64
	// ShadowingSigmaDB is the lognormal shadowing standard deviation.
	ShadowingSigmaDB float64
	// ReadingNoiseDB is per-scan measurement noise on each reading.
	ReadingNoiseDB float64

	// DeviceOffsetSigmaDB is the std-dev of the per-device constant RSS
	// bias (device heterogeneity).
	DeviceOffsetSigmaDB float64
	// ScanLimitMin and ScanLimitMax bound how many MACs a device reports
	// per scan (low-end devices truncate scans).
	ScanLimitMin, ScanLimitMax int
	// SensitivityMinDBm and SensitivityMaxDBm bound the weakest RSS a
	// device can detect; each scan draws a uniform threshold from this
	// range. The spread models the "limited scanning capability of
	// low-end devices" the paper blames for misleading missing values
	// (§II): a MAC absent from one record may be perfectly audible to a
	// better radio on the same spot.
	SensitivityMinDBm, SensitivityMaxDBm float64

	// TrajectoryLen, when > 1, groups scans into crowdsourced walks of
	// that many scans: a walker enters at a random point, takes ~5 m
	// steps, and contributes consecutive scans with the same device
	// (offset, sensitivity, scan cap) and the same collection time. This
	// mirrors how collection apps actually gather data and produces the
	// spatial correlation that trajectory-based methods (e.g. the RNN of
	// [13] in the paper) rely on. 0 or 1 means independent scans.
	TrajectoryLen int

	// APChurnFraction is the share of APs that are installed or removed
	// during the crowdsourcing campaign (§III-A of the paper: "APs could
	// be added and removed over time"). Each record carries an implicit
	// collection time in [0,1); a churned AP is only audible during a
	// random sub-interval, so same-floor records from different epochs
	// share fewer MACs. This temporal heterogeneity is what breaks
	// fixed-vocabulary matrix representations while the bipartite graph
	// absorbs it through multi-hop connectivity.
	APChurnFraction float64

	// Seed roots all randomness; a fixed seed reproduces the corpus
	// exactly.
	Seed int64
}

// Validate reports the first invalid field, if any.
func (p *Params) Validate() error {
	switch {
	case p.NumBuildings <= 0:
		return fmt.Errorf("simulate: NumBuildings %d must be positive", p.NumBuildings)
	case p.FloorsMin < 1 || p.FloorsMax < p.FloorsMin:
		return fmt.Errorf("simulate: floor range [%d,%d] invalid", p.FloorsMin, p.FloorsMax)
	case p.SideMin <= 0 || p.SideMax < p.SideMin:
		return fmt.Errorf("simulate: side range [%v,%v] invalid", p.SideMin, p.SideMax)
	case p.APDensityPer100m2 <= 0:
		return fmt.Errorf("simulate: AP density %v must be positive", p.APDensityPer100m2)
	case p.MACsPerAPMin < 1 || p.MACsPerAPMax < p.MACsPerAPMin:
		return fmt.Errorf("simulate: MACs-per-AP range [%d,%d] invalid", p.MACsPerAPMin, p.MACsPerAPMax)
	case p.RecordsPerFloor <= 0:
		return fmt.Errorf("simulate: RecordsPerFloor %d must be positive", p.RecordsPerFloor)
	case p.ScanLimitMin < 1 || p.ScanLimitMax < p.ScanLimitMin:
		return fmt.Errorf("simulate: scan limit range [%d,%d] invalid", p.ScanLimitMin, p.ScanLimitMax)
	case p.PathLossExp <= 0:
		return fmt.Errorf("simulate: path loss exponent %v must be positive", p.PathLossExp)
	case p.SensitivityMaxDBm < p.SensitivityMinDBm:
		return fmt.Errorf("simulate: sensitivity range [%v,%v] invalid", p.SensitivityMinDBm, p.SensitivityMaxDBm)
	case p.APChurnFraction < 0 || p.APChurnFraction > 1:
		return fmt.Errorf("simulate: AP churn fraction %v outside [0,1]", p.APChurnFraction)
	case p.TrajectoryLen < 0:
		return fmt.Errorf("simulate: trajectory length %d must be non-negative", p.TrajectoryLen)
	}
	return nil
}

// MicrosoftLike returns parameters that mimic the Kaggle corpus: many
// buildings of 2-12 floors with moderate area and around a thousand scans
// per floor. numBuildings and recordsPerFloor are exposed because the
// experiment harness runs on scaled-down corpora while cmd/datagen can emit
// the full 204-building corpus.
func MicrosoftLike(numBuildings, recordsPerFloor int, seed int64) Params {
	return Params{
		Name:                "microsoft-like",
		NumBuildings:        numBuildings,
		FloorsMin:           2,
		FloorsMax:           12,
		SideMin:             40,
		SideMax:             90,
		APDensityPer100m2:   0.8,
		MACsPerAPMin:        1,
		MACsPerAPMax:        3,
		RecordsPerFloor:     recordsPerFloor,
		TxPowerDBm:          -10,
		RefLossDB:           30,
		PathLossExp:         3.0,
		FloorAttenuationDB:  16,
		ShadowingSigmaDB:    8,
		ReadingNoiseDB:      5,
		DeviceOffsetSigmaDB: 3,
		ScanLimitMin:        8,
		ScanLimitMax:        30,
		SensitivityMinDBm:   -95,
		SensitivityMaxDBm:   -80,
		APChurnFraction:     0,
		Seed:                seed,
	}
}

// HongKongLike returns parameters that mimic the authors' five-facility
// Hong Kong collection: few but large, AP-dense buildings (office towers,
// a hospital, two malls).
func HongKongLike(recordsPerFloor int, seed int64) Params {
	return Params{
		Name:                "hongkong-like",
		NumBuildings:        5,
		FloorsMin:           3,
		FloorsMax:           10,
		SideMin:             60,
		SideMax:             120,
		APDensityPer100m2:   1.2,
		MACsPerAPMin:        1,
		MACsPerAPMax:        3,
		RecordsPerFloor:     recordsPerFloor,
		TxPowerDBm:          -10,
		RefLossDB:           30,
		PathLossExp:         3.2,
		FloorAttenuationDB:  15,
		ShadowingSigmaDB:    8,
		ReadingNoiseDB:      5,
		DeviceOffsetSigmaDB: 3,
		ScanLimitMin:        8,
		ScanLimitMax:        30,
		SensitivityMinDBm:   -95,
		SensitivityMaxDBm:   -80,
		APChurnFraction:     0,
		Seed:                seed,
	}
}

// Campus3F returns the small three-story campus building used by the
// paper's visualization figures (Fig. 6-8).
func Campus3F(recordsPerFloor int, seed int64) Params {
	p := MicrosoftLike(1, recordsPerFloor, seed)
	p.Name = "campus-3f"
	p.FloorsMin = 3
	p.FloorsMax = 3
	p.SideMin = 50
	p.SideMax = 50
	return p
}

// accessPoint is one physical AP: a position, the BSSIDs it beacons, and
// the sub-interval of the crowdsourcing campaign during which it was
// installed (activeFrom = 0, activeTo = 1 for stable APs).
type accessPoint struct {
	x, y                 float64
	floor                int
	macs                 []string
	activeFrom, activeTo float64
}

// rssAt returns the noiseless RSS of ap observed at (x, y, floor):
// log-distance path loss plus the per-floor attenuation factor.
func (p *Params) rssAt(ap *accessPoint, x, y float64, floor int) float64 {
	dz := float64(ap.floor-floor) * FloorHeightM
	dx := ap.x - x
	dy := ap.y - y
	d := math.Sqrt(dx*dx + dy*dy + dz*dz)
	if d < 1 {
		d = 1
	}
	floorDiff := ap.floor - floor
	if floorDiff < 0 {
		floorDiff = -floorDiff
	}
	return p.TxPowerDBm - p.RefLossDB - 10*p.PathLossExp*math.Log10(d) - p.FloorAttenuationDB*float64(floorDiff)
}

// randomMAC draws a unique colon-separated 48-bit MAC address.
func randomMAC(rng *rand.Rand, used map[string]struct{}) string {
	for {
		mac := fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
			rng.Intn(256), rng.Intn(256), rng.Intn(256),
			rng.Intn(256), rng.Intn(256), rng.Intn(256))
		if _, dup := used[mac]; dup {
			continue
		}
		used[mac] = struct{}{}
		return mac
	}
}

// Generate produces a corpus under the given parameters.
func Generate(p Params) (*dataset.Corpus, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	seeder := sampling.NewSeeder(p.Seed)
	corpus := &dataset.Corpus{Name: p.Name}
	for b := 0; b < p.NumBuildings; b++ {
		rng := seeder.NextRand()
		bld, err := generateBuilding(&p, b, rng)
		if err != nil {
			return nil, fmt.Errorf("simulate: building %d: %w", b, err)
		}
		corpus.Buildings = append(corpus.Buildings, *bld)
	}
	return corpus, nil
}

func generateBuilding(p *Params, index int, rng *rand.Rand) (*dataset.Building, error) {
	floors := p.FloorsMin
	if p.FloorsMax > p.FloorsMin {
		floors += rng.Intn(p.FloorsMax - p.FloorsMin + 1)
	}
	side := p.SideMin + rng.Float64()*(p.SideMax-p.SideMin)
	area := side * side
	name := fmt.Sprintf("%s-b%03d", p.Name, index)

	// Place APs floor by floor. BSSIDs are random hex like real MAC
	// addresses: a sorted vocabulary of them carries no floor
	// information, unlike sequential names which would hand matrix-based
	// methods an artificial floor-contiguous column layout.
	apsPerFloor := int(math.Max(1, math.Round(area/100*p.APDensityPer100m2)))
	var aps []accessPoint
	usedMACs := make(map[string]struct{})
	for f := 0; f < floors; f++ {
		for a := 0; a < apsPerFloor; a++ {
			ap := accessPoint{
				x:        rng.Float64() * side,
				y:        rng.Float64() * side,
				floor:    f,
				activeTo: 1,
			}
			if rng.Float64() < p.APChurnFraction {
				// Installed or removed mid-campaign: active for a
				// random window covering 30-70% of the campaign.
				span := 0.3 + rng.Float64()*0.4
				start := rng.Float64() * (1 - span)
				ap.activeFrom = start
				ap.activeTo = start + span
			}
			nm := p.MACsPerAPMin
			if p.MACsPerAPMax > p.MACsPerAPMin {
				nm += rng.Intn(p.MACsPerAPMax - p.MACsPerAPMin + 1)
			}
			for m := 0; m < nm; m++ {
				ap.macs = append(ap.macs, randomMAC(rng, usedMACs))
			}
			aps = append(aps, ap)
		}
	}

	bld := &dataset.Building{Name: name, Floors: floors, AreaM2: area}
	recID := 0
	type candidate struct {
		mac string
		rss float64
	}
	// device holds the per-walker sampling state shared across a
	// trajectory's scans.
	type device struct {
		offset      float64
		sensitivity float64
		scanLimit   int
		when        float64
	}
	newDevice := func() device {
		d := device{
			offset:      rng.NormFloat64() * p.DeviceOffsetSigmaDB,
			sensitivity: p.SensitivityMinDBm + rng.Float64()*(p.SensitivityMaxDBm-p.SensitivityMinDBm),
			scanLimit:   p.ScanLimitMin,
			when:        rng.Float64(), // collection time within the campaign
		}
		if p.ScanLimitMax > p.ScanLimitMin {
			d.scanLimit += rng.Intn(p.ScanLimitMax - p.ScanLimitMin + 1)
		}
		return d
	}
	// scanAt synthesizes one scan at (x, y) on floor f with device d,
	// returning false on a dead spot.
	scanAt := func(x, y float64, f int, d device) (dataset.Record, bool) {
		var cands []candidate
		for i := range aps {
			ap := &aps[i]
			if d.when < ap.activeFrom || d.when > ap.activeTo {
				continue // AP not installed at collection time
			}
			base := p.rssAt(ap, x, y, f)
			// One shadowing draw per AP-position pair, shared by the
			// AP's BSSIDs (they share the radio).
			shadow := rng.NormFloat64() * p.ShadowingSigmaDB
			for _, mac := range ap.macs {
				rss := base + shadow + d.offset + rng.NormFloat64()*p.ReadingNoiseDB
				if rss < d.sensitivity {
					continue
				}
				if rss > -20 {
					rss = -20
				}
				cands = append(cands, candidate{mac: mac, rss: rss})
			}
		}
		if len(cands) == 0 {
			return dataset.Record{}, false
		}
		// Devices report the strongest APs first and truncate.
		sort.Slice(cands, func(i, j int) bool { return cands[i].rss > cands[j].rss })
		if len(cands) > d.scanLimit {
			cands = cands[:d.scanLimit]
		}
		rec := dataset.Record{
			ID:    fmt.Sprintf("%s-r%06d", name, recID),
			Floor: f,
		}
		recID++
		for _, c := range cands {
			rec.Readings = append(rec.Readings, dataset.Reading{MAC: c.mac, RSS: math.Round(c.rss)})
		}
		return rec, true
	}
	const stepM = 5.0
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > side {
			return side
		}
		return v
	}
	for f := 0; f < floors; f++ {
		emitted := 0
		for emitted < p.RecordsPerFloor {
			if p.TrajectoryLen > 1 {
				// One walker contributes a run of correlated scans.
				d := newDevice()
				x := rng.Float64() * side
				y := rng.Float64() * side
				steps := p.TrajectoryLen
				if left := p.RecordsPerFloor - emitted; steps > left {
					steps = left
				}
				for t := 0; t < steps; t++ {
					if rec, ok := scanAt(x, y, f, d); ok {
						bld.Records = append(bld.Records, rec)
					}
					emitted++
					angle := rng.Float64() * 2 * math.Pi
					x = clamp(x + stepM*math.Cos(angle))
					y = clamp(y + stepM*math.Sin(angle))
				}
				continue
			}
			if rec, ok := scanAt(rng.Float64()*side, rng.Float64()*side, f, newDevice()); ok {
				bld.Records = append(bld.Records, rec)
			}
			emitted++
		}
	}
	if len(bld.Records) == 0 {
		return nil, fmt.Errorf("no records generated (side=%v floors=%d)", side, floors)
	}
	return bld, nil
}
