package simulate

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestValidate(t *testing.T) {
	valid := Campus3F(10, 1)
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero buildings", func(p *Params) { p.NumBuildings = 0 }},
		{"bad floors", func(p *Params) { p.FloorsMin = 3; p.FloorsMax = 2 }},
		{"bad side", func(p *Params) { p.SideMin = -1 }},
		{"zero density", func(p *Params) { p.APDensityPer100m2 = 0 }},
		{"bad macs per ap", func(p *Params) { p.MACsPerAPMin = 0 }},
		{"zero records", func(p *Params) { p.RecordsPerFloor = 0 }},
		{"bad scan limit", func(p *Params) { p.ScanLimitMin = 0 }},
		{"bad path loss", func(p *Params) { p.PathLossExp = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := Campus3F(10, 1)
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Campus3F(20, 42)
	a, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(a.Buildings) != len(b.Buildings) {
		t.Fatal("building counts differ across identical seeds")
	}
	ra, rb := a.Buildings[0].Records, b.Buildings[0].Records
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].ID != rb[i].ID || len(ra[i].Readings) != len(rb[i].Readings) {
			t.Fatalf("record %d differs across identical seeds", i)
		}
		for j := range ra[i].Readings {
			if ra[i].Readings[j] != rb[i].Readings[j] {
				t.Fatalf("reading %d/%d differs across identical seeds", i, j)
			}
		}
	}
}

func TestGenerateShape(t *testing.T) {
	p := Campus3F(30, 7)
	c, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(c.Buildings) != 1 {
		t.Fatalf("buildings = %d, want 1", len(c.Buildings))
	}
	b := &c.Buildings[0]
	if b.Floors != 3 {
		t.Errorf("floors = %d, want 3", b.Floors)
	}
	counts := b.FloorCounts()
	for f := 0; f < 3; f++ {
		if counts[f] < 25 {
			t.Errorf("floor %d has only %d records (dead spots should be rare)", f, counts[f])
		}
	}
	for i := range b.Records {
		rec := &b.Records[i]
		if len(rec.Readings) == 0 {
			t.Fatalf("record %s empty", rec.ID)
		}
		if len(rec.Readings) > p.ScanLimitMax {
			t.Fatalf("record %s has %d readings, above scan cap %d", rec.ID, len(rec.Readings), p.ScanLimitMax)
		}
		for _, rd := range rec.Readings {
			if rd.RSS < p.SensitivityMinDBm-1 || rd.RSS > -19 {
				t.Fatalf("record %s RSS %v outside [%v,-20]", rec.ID, rd.RSS, p.SensitivityMinDBm)
			}
		}
	}
}

func TestGenerateHeterogeneityStats(t *testing.T) {
	// The corpus must reproduce the Fig. 1 qualitative shape: records see
	// only a small fraction of the floor's MACs, and most record pairs on
	// a floor overlap below 50%.
	p := Campus3F(120, 11)
	c, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b := &c.Buildings[0]
	var floor0 []dataset.Record
	for i := range b.Records {
		if b.Records[i].Floor == 0 {
			floor0 = append(floor0, b.Records[i])
		}
	}
	distinct := map[string]struct{}{}
	for i := range floor0 {
		for _, rd := range floor0[i].Readings {
			distinct[rd.MAC] = struct{}{}
		}
	}
	meanMACs := 0.0
	for i := range floor0 {
		meanMACs += float64(len(floor0[i].Readings))
	}
	meanMACs /= float64(len(floor0))
	if frac := meanMACs / float64(len(distinct)); frac > 0.7 {
		t.Errorf("records see %.0f%% of floor MACs on average; want sparse (<70%%)", frac*100)
	}
	rng := rand.New(rand.NewSource(3))
	ratios := dataset.PairOverlapRatios(floor0, 2000, rng)
	below := 0
	for _, r := range ratios {
		if r < 0.5 {
			below++
		}
	}
	if frac := float64(below) / float64(len(ratios)); frac < 0.3 {
		t.Errorf("only %.0f%% of pairs overlap <50%%; corpus is too homogeneous", frac*100)
	}
}

func TestGenerateFloorSeparability(t *testing.T) {
	// Records on different floors should share far fewer MACs than
	// records on the same floor — the signal GRAFICS exploits.
	p := Campus3F(60, 5)
	c, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	recs := c.Buildings[0].Records
	var same, diff []float64
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			r := dataset.OverlapRatio(&recs[i], &recs[j])
			if recs[i].Floor == recs[j].Floor {
				same = append(same, r)
			} else {
				diff = append(diff, r)
			}
		}
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(same) <= mean(diff)*1.5 {
		t.Errorf("same-floor overlap %.3f not clearly above cross-floor %.3f", mean(same), mean(diff))
	}
}

func TestProfileRanges(t *testing.T) {
	ms := MicrosoftLike(3, 50, 1)
	if err := ms.Validate(); err != nil {
		t.Errorf("MicrosoftLike invalid: %v", err)
	}
	hk := HongKongLike(50, 1)
	if err := hk.Validate(); err != nil {
		t.Errorf("HongKongLike invalid: %v", err)
	}
	c, err := Generate(MicrosoftLike(4, 20, 9))
	if err != nil {
		t.Fatalf("Generate microsoft-like: %v", err)
	}
	if len(c.Buildings) != 4 {
		t.Fatalf("buildings = %d, want 4", len(c.Buildings))
	}
	for i := range c.Buildings {
		b := &c.Buildings[i]
		if b.Floors < 2 || b.Floors > 12 {
			t.Errorf("building %d floors %d outside [2,12]", i, b.Floors)
		}
		if b.DistinctMACs() == 0 {
			t.Errorf("building %d has no MACs", i)
		}
	}
}

func TestTrajectoryMode(t *testing.T) {
	p := Campus3F(60, 13)
	p.TrajectoryLen = 10
	c, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b := &c.Buildings[0]
	counts := b.FloorCounts()
	for f := 0; f < 3; f++ {
		if counts[f] < 50 {
			t.Errorf("floor %d has %d records, want near 60", f, counts[f])
		}
	}
	// Consecutive records of one walk should overlap much more than
	// records from different walks: compare mean overlap of adjacent
	// pairs vs pairs 20 apart on the same floor.
	var floor0 []dataset.Record
	for i := range b.Records {
		if b.Records[i].Floor == 0 {
			floor0 = append(floor0, b.Records[i])
		}
	}
	var adjacent, distant float64
	var nAdj, nDist int
	for i := 0; i+1 < len(floor0); i++ {
		adjacent += dataset.OverlapRatio(&floor0[i], &floor0[i+1])
		nAdj++
		if i+20 < len(floor0) {
			distant += dataset.OverlapRatio(&floor0[i], &floor0[i+20])
			nDist++
		}
	}
	if adjacent/float64(nAdj) <= distant/float64(nDist) {
		t.Errorf("trajectory scans not spatially correlated: adjacent %.3f <= distant %.3f",
			adjacent/float64(nAdj), distant/float64(nDist))
	}
}

func TestTrajectoryValidation(t *testing.T) {
	p := Campus3F(10, 1)
	p.TrajectoryLen = -1
	if err := p.Validate(); err == nil {
		t.Error("negative trajectory length should error")
	}
}
