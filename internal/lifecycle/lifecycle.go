// Package lifecycle manages the durability and freshness of a crowd-grown
// GRAFICS portfolio — the deployment mode of the paper where every
// classified scan can be absorbed to enrich the graph. It closes two gaps
// that a bare portfolio leaves open in production:
//
// Durability. Absorbed scans live only in process memory; a restart
// discards the crowd corpus. The Manager journals every absorb to an
// append-only write-ahead log (internal/wal) before acknowledging it, and
// periodically captures the whole fleet in a portfolio snapshot (manifest
// plus per-building gobs under a state directory). Open restores the
// snapshot and replays the WAL tail, so a SIGKILL loses at most the
// absorb that was mid-append.
//
// Freshness. Absorbed scans are embedded against the frozen model and
// never re-trained, so the E-LINE model drifts away from the graph it
// serves. The Manager tracks per-building staleness — absorbed-since-fit
// count, overlay/anchor record ratio, and model age — and when a Policy
// threshold trips it re-Fits the building in a background goroutine on a
// copy of the accumulated corpus, then atomically hot-swaps the new
// core.System into the portfolio while classifications continue against
// the old one. After a successful swap it snapshots the fleet and
// truncates the WAL, bounding the log by the refit cadence.
//
// All writes (absorbs) must flow through the Manager for the journal to
// be complete; reads may use the Manager or the portfolio directly.
package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/portfolio"
	"repro/internal/wal"
)

// Policy sets the staleness thresholds that trigger a background refit.
// A zero value for any threshold disables that trigger; the zero Policy
// never refits on its own (ForceRefit still works).
type Policy struct {
	// RefitAfterAbsorbs refits a building once it has absorbed this many
	// scans since its last fit.
	RefitAfterAbsorbs int `json:"refit_after_absorbs,omitempty"`
	// MaxOverlayRatio refits once absorbed-since-fit records exceed this
	// fraction of the records the model was fitted on — the share of the
	// graph the frozen embedding has never trained on.
	MaxOverlayRatio float64 `json:"max_overlay_ratio,omitempty"`
	// MaxModelAge refits a building whose last fit is older than this.
	MaxModelAge time.Duration `json:"max_model_age,omitempty"`
	// CheckInterval is how often the age trigger is evaluated (count and
	// ratio triggers are evaluated on every absorb). 0 means a minute.
	CheckInterval time.Duration `json:"check_interval,omitempty"`
}

// enabled reports whether any automatic trigger is configured.
func (p Policy) enabled() bool {
	return p.RefitAfterAbsorbs > 0 || p.MaxOverlayRatio > 0 || p.MaxModelAge > 0
}

// Options configures a Manager.
type Options struct {
	// StateDir is where snapshots (manifest + per-building gobs) and the
	// WAL (a wal/ subdirectory) live. Empty disables durability: no
	// journal, no snapshots — the Manager still refits per Policy.
	StateDir string
	// WAL tunes the write-ahead log; Dir is derived from StateDir and
	// ignored if set.
	WAL wal.Options
	// Policy sets the refit triggers.
	Policy Policy
	// Logf receives operational log lines (refit started/finished,
	// snapshot written, replay progress). Nil discards them.
	Logf func(format string, args ...any)
	// Now overrides the clock, for tests. Nil means time.Now.
	Now func() time.Time
	// DegradedThreshold is how many consecutive journal failures flip
	// the manager into degraded read-only mode (absorbs refused with
	// ErrDegraded, reads unaffected). 0 means defaultDegradedThreshold.
	DegradedThreshold int
	// DegradedProbe is how often a degraded manager admits one absorb
	// to probe the journal for recovery, and the Retry-After hint for
	// the ones it sheds. 0 means defaultDegradedProbe.
	DegradedProbe time.Duration
}

func (o Options) degradedThreshold() int {
	if o.DegradedThreshold > 0 {
		return o.DegradedThreshold
	}
	return defaultDegradedThreshold
}

func (o Options) degradedProbe() time.Duration {
	if o.DegradedProbe > 0 {
		return o.DegradedProbe
	}
	return defaultDegradedProbe
}

// walSubdir is the WAL directory under StateDir.
const walSubdir = "wal"

// buildingState is the Manager's per-building refit bookkeeping.
// Staleness itself (absorbed-since-fit, record counts) is read from the
// live core.System, which is authoritative by construction: a refit
// starts a fresh absorb ledger and a snapshot restore repopulates it.
type buildingState struct {
	lastFit       time.Time
	refitting     bool
	refitStarted  time.Time // when the in-flight refit began; zero when idle
	refits        int
	lastRefitErr  string
	lastRefitAt   time.Time // when the last refit attempt finished
	lastRefitTime time.Duration
}

// Manager wraps a portfolio with the durable model lifecycle. It
// implements core.Classifier; absorbing classifications are journaled and
// counted toward the refit policy. Safe for concurrent use.
type Manager struct {
	p        *portfolio.Portfolio
	log      *wal.Log // nil when StateDir is empty
	stateDir string
	policy   Policy
	logf     func(string, ...any)
	now      func() time.Time

	// mu coordinates writers: absorbs (journal + graph write) hold it
	// shared; snapshotting, WAL truncation, and the hot-swap's drain
	// phase hold it exclusively. Read-only classifications never touch
	// it, so they continue through snapshots and swaps.
	mu sync.RWMutex

	// stmu guards st, the snapshot counters, and closing. The refitting
	// flag and wg.Add live under it so startRefit cannot race Close's
	// wg.Wait (the WaitGroup-reuse misuse the sync docs forbid).
	stmu sync.Mutex
	// grafics:guardedby stmu
	st map[string]*buildingState
	// grafics:guardedby stmu
	snapshots int
	// grafics:guardedby stmu
	lastSnapshot time.Time
	// grafics:guardedby stmu
	replayed int // WAL records replayed at Open
	// grafics:guardedby stmu
	closing bool

	wg       sync.WaitGroup
	stop     chan struct{}
	stopOnce sync.Once

	// refitCtx is cancelled by Close before it waits on wg, so an
	// in-flight background re-fit (embedding SGD plus agglomeration, the
	// long pole of shutdown) aborts within milliseconds instead of
	// training a model nobody will serve. The old model keeps serving.
	refitCtx    context.Context
	refitCancel context.CancelFunc

	// Degraded read-only mode: consecutive journal failures trip the
	// manager into refusing absorbs (ErrDegraded) while reads continue;
	// a periodic probe absorb clears it once the journal recovers.
	degThreshold int
	degProbe     time.Duration
	degMu        sync.Mutex
	// grafics:guardedby degMu
	degraded bool
	// grafics:guardedby degMu
	degFails int
	// grafics:guardedby degMu
	degProbeAt time.Time
}

// Open restores (or cold-starts) a managed portfolio. With a StateDir, it
// loads the portfolio snapshot if one exists (cold start otherwise),
// replays the WAL tail — every absorb acknowledged after the last
// snapshot — into the restored models, and opens the journal for new
// absorbs. cfg configures buildings registered after the restore. It is
// OpenCtx with a background context.
//
//grafics:ctxok compatibility wrapper; callers migrate to OpenCtx
func Open(cfg core.Config, opts Options) (*Manager, error) {
	return OpenCtx(context.Background(), cfg, opts)
}

// OpenCtx is Open with cancellation threaded through the boot sequence:
// WAL-tail replay re-runs every absorb acknowledged since the last
// snapshot through the full inference pipeline, which on a large fleet
// is the slow half of a restart, so a cancelled ctx (deploy rollback,
// SIGTERM during boot) aborts the restore promptly with ctx.Err()
// instead of finishing a boot nobody wants. ctx governs only the open
// itself, not the returned Manager's lifetime — background refits are
// cancelled by Close, not by ctx.
func OpenCtx(ctx context.Context, cfg core.Config, opts Options) (*Manager, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	if opts.Policy.CheckInterval <= 0 {
		opts.Policy.CheckInterval = time.Minute
	}

	p := portfolio.New(cfg)
	var jrnl *wal.Log
	replayed := 0
	if opts.StateDir != "" {
		restored, err := portfolio.LoadPortfolio(opts.StateDir, cfg)
		switch {
		case err == nil:
			p = restored
			logf("lifecycle: restored %d buildings from %s", len(p.Buildings()), opts.StateDir)
		case errors.Is(err, portfolio.ErrNoManifest):
			logf("lifecycle: no snapshot in %s, cold start", opts.StateDir)
		default:
			return nil, err
		}
		walDir := opts.WAL
		walDir.Dir = walPath(opts.StateDir)
		// Replay before opening: the journal's torn tail, if any, is the
		// crash point, and Open would add a fresh segment after it.
		skipped := 0
		n, err := wal.Replay(walDir.Dir, func(r wal.Record) error {
			if err := ctx.Err(); err != nil {
				// Abort the boot: a half-replayed portfolio must not open.
				return err
			}
			if aerr := ApplyRecord(ctx, p, r); aerr != nil {
				// A record for a building the snapshot doesn't know (or a
				// scan the restored model rejects) cannot be replayed;
				// dropping it beats refusing to boot the whole fleet.
				skipped++
				logf("lifecycle: replay: skipping %s: %v", describeRecord(&r), aerr)
			} else {
				replayed++
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lifecycle: wal replay: %w", err)
		}
		if n > 0 {
			logf("lifecycle: replayed %d/%d journaled absorbs", replayed, n)
		}
		replayedTotal.Add(int64(replayed))
		jrnl, err = wal.Open(walDir)
		if err != nil {
			return nil, err
		}
	}

	// grafics:ctxok manager-lifetime root: refits outlive the open ctx and are cancelled by Close
	refitCtx, refitCancel := context.WithCancel(context.Background())
	m := &Manager{
		p:            p,
		log:          jrnl,
		stateDir:     opts.StateDir,
		policy:       opts.Policy,
		logf:         logf,
		now:          now,
		st:           make(map[string]*buildingState),
		replayed:     replayed,
		stop:         make(chan struct{}),
		refitCtx:     refitCtx,
		refitCancel:  refitCancel,
		degThreshold: opts.degradedThreshold(),
		degProbe:     opts.degradedProbe(),
	}
	// Fold a non-trivial replay into a fresh snapshot right away:
	// otherwise a crash-looping process re-replays (and re-grows) the WAL
	// on every boot, unbounded, since nothing else truncates it until a
	// graceful shutdown or a refit. Failure is non-fatal — the WAL still
	// holds the records.
	if m.stateDir != "" && replayed > 0 {
		if err := m.Snapshot(); err != nil {
			logf("lifecycle: post-replay snapshot failed: %v", err)
		}
	}
	// A fleet restored with a deep WAL may already be past a threshold;
	// catch up instead of waiting for the next absorb.
	for _, name := range p.Buildings() {
		m.maybeRefit(name)
	}
	if m.policy.MaxModelAge > 0 {
		m.wg.Add(1)
		go m.ageLoop()
	}
	return m, nil
}

// Manage wraps an already-populated portfolio in a Manager without any
// restore: no snapshot load, no WAL replay — the portfolio is taken as
// the current truth. This is the replication promotion path: a follower
// that has applied the shipped log up to the primary's death already
// holds the freshest state in memory, and wrapping it (rather than
// re-opening from disk) turns it into a primary without a restart. With
// a StateDir, Manage opens a fresh journal and immediately snapshots the
// adopted fleet, so the new primary's durability contract starts at the
// moment of promotion; any stale WAL content under StateDir from an
// earlier incarnation is superseded by that snapshot.
func Manage(p *portfolio.Portfolio, opts Options) (*Manager, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	if opts.Policy.CheckInterval <= 0 {
		opts.Policy.CheckInterval = time.Minute
	}
	var jrnl *wal.Log
	if opts.StateDir != "" {
		walDir := opts.WAL
		walDir.Dir = walPath(opts.StateDir)
		var err error
		jrnl, err = wal.Open(walDir)
		if err != nil {
			return nil, err
		}
	}
	// grafics:ctxok manager-lifetime root: refits are cancelled by Close
	refitCtx, refitCancel := context.WithCancel(context.Background())
	m := &Manager{
		p:            p,
		log:          jrnl,
		stateDir:     opts.StateDir,
		policy:       opts.Policy,
		logf:         logf,
		now:          now,
		st:           make(map[string]*buildingState),
		stop:         make(chan struct{}),
		refitCtx:     refitCtx,
		refitCancel:  refitCancel,
		degThreshold: opts.degradedThreshold(),
		degProbe:     opts.degradedProbe(),
	}
	if m.stateDir != "" {
		if err := m.Snapshot(); err != nil {
			m.Close()
			return nil, fmt.Errorf("lifecycle: adoption snapshot: %w", err)
		}
	}
	if m.policy.MaxModelAge > 0 {
		m.wg.Add(1)
		go m.ageLoop()
	}
	return m, nil
}

// WALPosition reports the journal's replication coordinates: its epoch
// (changes on every truncation) and the current append position. ok is
// false when the manager runs without durability (no WAL to replicate).
func (m *Manager) WALPosition() (epoch string, pos wal.Position, ok bool) {
	if m.log == nil {
		return "", wal.Position{}, false
	}
	return m.log.Epoch(), m.log.Position(), true
}

// CaptureSnapshot writes a consistent point-in-time snapshot of the
// fleet into dir — not the manager's state directory; the journal is NOT
// truncated — and returns the WAL epoch and append position the snapshot
// corresponds to. It holds the exclusive writer lock, so no absorb is
// mid-journal while the portfolio is saved: every record at or past the
// returned position is exactly the set of writes the snapshot does not
// contain. This is the replication bootstrap source — a follower restores
// the captured snapshot and tails the WAL from the returned position.
func (m *Manager) CaptureSnapshot(dir string) (epoch string, pos wal.Position, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.p.Save(dir); err != nil {
		return "", wal.Position{}, err
	}
	if m.log != nil {
		epoch = m.log.Epoch()
		pos = m.log.Position()
	}
	return epoch, pos, nil
}

// walPath returns the WAL directory under a state dir.
func walPath(stateDir string) string { return filepath.Join(stateDir, walSubdir) }

// WALDir exposes the WAL directory under a state dir — where a
// replication source finds the raw segment files to ship.
func WALDir(stateDir string) string { return walPath(stateDir) }

// ApplyRecord applies one journaled record to a portfolio: an absorb is
// routed to its attributed building (no re-attribution — the journal
// already knows the owner), a retirement is re-run fleet-wide. This is
// the single replay path shared by boot-time WAL recovery and by
// replication followers applying a shipped log, so the two can never
// drift in how they interpret a record. ErrUnknownMAC on a retirement is
// not an error: no restored building holds the AP anymore (e.g. retired
// again after a re-absorb), which is already the desired end state.
func ApplyRecord(ctx context.Context, p *portfolio.Portfolio, r wal.Record) error {
	if r.RetireMAC != "" {
		if _, err := p.RemoveMAC(r.RetireMAC); err != nil && !errors.Is(err, portfolio.ErrUnknownMAC) {
			return err
		}
		return nil
	}
	_, err := p.AbsorbBuilding(ctx, r.Building, &r.Scan)
	return err
}

// describeRecord names a record for log lines.
func describeRecord(r *wal.Record) string {
	if r.RetireMAC != "" {
		return fmt.Sprintf("retirement of %q", r.RetireMAC)
	}
	return fmt.Sprintf("absorb %q for %q", r.Scan.ID, r.Building)
}

// Portfolio returns the managed portfolio, for registration
// (AddBuilding) and read paths that want to skip the Manager.
func (m *Manager) Portfolio() *portfolio.Portfolio { return m.p }

// state returns (creating if needed) the bookkeeping for a building. The
// caller must not hold stmu.
func (m *Manager) state(name string) *buildingState {
	m.stmu.Lock()
	defer m.stmu.Unlock()
	bs, ok := m.st[name]
	if !ok {
		bs = &buildingState{lastFit: m.now()}
		m.st[name] = bs
	}
	return bs
}

var _ core.Classifier = (*Manager)(nil)

// Classify implements core.Classifier. Read-only classifications pass
// straight through to the portfolio; absorbing ones are journaled to the
// WAL before the call returns and counted toward the refit policy.
func (m *Manager) Classify(ctx context.Context, rec *dataset.Record, opts ...core.Option) (core.Result, error) {
	routed, err := m.ClassifyRouted(ctx, rec, opts...)
	return routed.Result, err
}

// ClassifyRouted is Classify keeping the building attribution.
func (m *Manager) ClassifyRouted(ctx context.Context, rec *dataset.Record, opts ...core.Option) (portfolio.Routed, error) {
	if !core.NewRequest(rec, opts...).Absorb() {
		return m.p.ClassifyRouted(ctx, rec, opts...)
	}
	if err := m.admitAbsorb(); err != nil {
		return portfolio.Routed{}, err
	}
	routed, err := func() (portfolio.Routed, error) {
		m.mu.RLock()
		defer m.mu.RUnlock()
		routed, err := m.p.ClassifyRouted(ctx, rec, opts...)
		if err == nil {
			spanDone := obs.StartSpan(ctx, "journal")
			err = m.journal(wal.Record{Building: routed.Building, Scan: *rec})
			spanDone()
		}
		return routed, err
	}()
	if err == nil {
		m.maybeRefit(routed.Building)
	}
	return routed, err
}

// ClassifyBatch implements core.Classifier for batches.
func (m *Manager) ClassifyBatch(ctx context.Context, records []dataset.Record, opts ...core.Option) ([]core.Result, []error) {
	routed, errs := m.ClassifyRoutedBatch(ctx, records, opts...)
	results := make([]core.Result, len(records))
	for i := range routed {
		results[i] = routed[i].Result
	}
	return results, errs
}

// ClassifyRoutedBatch is ClassifyBatch keeping per-record attributions.
// For absorbing batches every successful record is journaled; the refit
// check runs once per touched building after the batch.
func (m *Manager) ClassifyRoutedBatch(ctx context.Context, records []dataset.Record, opts ...core.Option) ([]portfolio.Routed, []error) {
	if !core.NewRequest(nil, opts...).Absorb() {
		return m.p.ClassifyRoutedBatch(ctx, records, opts...)
	}
	if err := m.admitAbsorb(); err != nil {
		routed := make([]portfolio.Routed, len(records))
		errs := make([]error, len(records))
		for i := range errs {
			errs[i] = err
		}
		return routed, errs
	}
	touched := make(map[string]struct{})
	routed, errs := func() ([]portfolio.Routed, []error) {
		m.mu.RLock()
		defer m.mu.RUnlock()
		routed, errs := m.p.ClassifyRoutedBatch(ctx, records, opts...)
		for i := range routed {
			if errs[i] == nil {
				errs[i] = m.journal(wal.Record{Building: routed[i].Building, Scan: records[i]})
			}
			if errs[i] == nil {
				touched[routed[i].Building] = struct{}{}
			}
		}
		return routed, errs
	}()
	for name := range touched {
		m.maybeRefit(name)
	}
	return routed, errs
}

// AbsorbBuilding absorbs a scan into a named building (no attribution),
// journaled like any other absorb.
func (m *Manager) AbsorbBuilding(ctx context.Context, building string, rec *dataset.Record, opts ...core.Option) (core.Result, error) {
	if err := m.admitAbsorb(); err != nil {
		return core.Result{}, err
	}
	res, err := func() (core.Result, error) {
		m.mu.RLock()
		defer m.mu.RUnlock()
		res, err := m.p.AbsorbBuilding(ctx, building, rec, opts...)
		if err == nil {
			err = m.journal(wal.Record{Building: building, Scan: *rec})
		}
		return res, err
	}()
	if err == nil {
		m.maybeRefit(building)
	}
	return res, err
}

// RemoveMAC retires an access point fleet-wide, journaled so the
// retirement survives a crash exactly like an absorb does (snapshot
// restores and refits re-apply it from the per-building retirement sets;
// the WAL covers the window since the last snapshot).
func (m *Manager) RemoveMAC(mac string) (int, error) {
	if err := m.admitAbsorb(); err != nil {
		return 0, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, err := m.p.RemoveMAC(mac)
	if err == nil {
		err = m.journal(wal.Record{RetireMAC: mac})
	}
	return n, err
}

// journal appends one write to the WAL. The caller holds m.mu (shared),
// which orders the append strictly before any snapshot's WAL truncation.
// An append failure is returned so the caller fails the request instead
// of acknowledging a write that would not survive a crash: the write did
// land in memory (and the next snapshot would capture it), but the
// durability contract is journal-before-ack, and a client retry after
// the error at worst duplicates a crowd scan.
func (m *Manager) journal(rec wal.Record) error {
	if m.log == nil {
		return nil
	}
	err := m.log.Append(rec)
	m.noteJournal(err)
	if err != nil {
		what := "absorb " + rec.Scan.ID
		if rec.RetireMAC != "" {
			what = "retirement of " + rec.RetireMAC
		}
		m.logf("lifecycle: WAL append failed, %s applied in memory but not durable: %v", what, err)
		return fmt.Errorf("lifecycle: journal: %w", err)
	}
	journaledWritesTotal.Inc()
	return nil
}

// Snapshot captures the whole fleet under the state directory and
// truncates the WAL. It blocks absorbs (exclusive writer lock) for the
// duration, so every journaled absorb is either inside the snapshot or
// appended after the truncation — never lost between the two; read-only
// classifications continue throughout. Snapshot is a no-op without a
// state directory.
func (m *Manager) Snapshot() error {
	if m.stateDir == "" {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked()
}

// snapshotLocked writes the snapshot and truncates the WAL. The caller
// holds m.mu exclusively.
func (m *Manager) snapshotLocked() error {
	if m.stateDir == "" {
		return nil
	}
	start := m.now()
	if err := m.p.Save(m.stateDir); err != nil {
		return err
	}
	// Only a captured journal may be dropped: if Reset fails the WAL just
	// replays extra (now snapshotted) absorbs on the next boot, which
	// re-absorb as duplicates rather than losing data.
	if m.log != nil {
		if err := m.log.Reset(); err != nil {
			m.logf("lifecycle: WAL truncate after snapshot failed: %v", err)
		}
	}
	m.stmu.Lock()
	m.snapshots++
	m.lastSnapshot = m.now()
	m.stmu.Unlock()
	snapshotsTotal.Inc()
	lastSnapshotUnix.SetInt(m.now().Unix())
	m.logf("lifecycle: snapshot of %d buildings written to %s in %v",
		len(m.p.Buildings()), m.stateDir, m.now().Sub(start).Round(time.Millisecond))
	return nil
}

// staleness evaluates the policy for one building. It returns the trigger
// description, or "" if the building is fresh.
func (m *Manager) staleness(name string, bs *buildingState) string {
	sys, err := m.p.System(name)
	if err != nil {
		return ""
	}
	absorbed := sys.AbsorbedRecords()
	if n := m.policy.RefitAfterAbsorbs; n > 0 && absorbed >= n {
		return fmt.Sprintf("absorbed %d >= %d", absorbed, n)
	}
	if r := m.policy.MaxOverlayRatio; r > 0 {
		if train := sys.TrainingRecords(); train > 0 && float64(absorbed)/float64(train) >= r {
			return fmt.Sprintf("overlay ratio %.3f >= %.3f", float64(absorbed)/float64(train), r)
		}
	}
	if a := m.policy.MaxModelAge; a > 0 {
		m.stmu.Lock()
		age := m.now().Sub(bs.lastFit)
		m.stmu.Unlock()
		if age >= a {
			return fmt.Sprintf("model age %v >= %v", age.Round(time.Second), a)
		}
	}
	return ""
}

// maybeRefit starts a background refit of name if the policy says so and
// none is already running.
func (m *Manager) maybeRefit(name string) {
	// Refresh the staleness gauge on every absorb (and every age tick)
	// regardless of policy: lag between crowd growth and the last fit is
	// worth watching even when automatic refits are off.
	if sys, err := m.p.System(name); err == nil {
		absorbedSinceFit.With(name).SetInt(int64(sys.AbsorbedRecords()))
	}
	if !m.policy.enabled() {
		return
	}
	bs := m.state(name)
	why := m.staleness(name, bs)
	if why == "" {
		return
	}
	m.startRefit(name, bs, why)
}

// startRefit flips the refitting flag and launches the background refit
// goroutine; it is a no-op if one is already running or the manager is
// closing. The flag, the closing check, and wg.Add happen under one lock
// so a refit can never be launched after Close's wg.Wait has started.
func (m *Manager) startRefit(name string, bs *buildingState, why string) bool {
	m.stmu.Lock()
	if m.closing || bs.refitting {
		m.stmu.Unlock()
		return false
	}
	bs.refitting = true
	bs.refitStarted = m.now()
	m.wg.Add(1)
	m.stmu.Unlock()
	refitsRunning.Add(1)
	m.logf("lifecycle: refit of %q starting (%s)", name, why)
	go m.refit(name, bs)
	return true
}

// ForceRefit triggers a refit regardless of thresholds. An empty name
// refits every registered building. It returns the buildings whose refit
// was started (already-running ones are skipped).
func (m *Manager) ForceRefit(name string) ([]string, error) {
	names := []string{name}
	if name == "" {
		names = m.p.Buildings()
	} else if _, err := m.p.System(name); err != nil {
		return nil, err
	}
	var started []string
	for _, n := range names {
		if m.startRefit(n, m.state(n), "forced") {
			started = append(started, n)
		}
	}
	return started, nil
}

// refit retrains one building on its accumulated corpus and hot-swaps the
// result in. The expensive Fit runs without any lifecycle lock held:
// classifications and absorbs continue against the old model. The final
// drain-swap-snapshot runs under the exclusive writer lock, so the
// absorbs that raced with training are replayed into the new model before
// it goes live and the post-swap snapshot + WAL truncation observe a
// quiescent journal.
func (m *Manager) refit(name string, bs *buildingState) {
	defer m.wg.Done()
	start := m.now()
	err := m.refitOnce(m.refitCtx, name)

	m.stmu.Lock()
	bs.refitting = false
	bs.refitStarted = time.Time{}
	bs.lastRefitAt = m.now()
	bs.lastRefitTime = m.now().Sub(start)
	if err != nil {
		bs.lastRefitErr = err.Error()
	} else {
		bs.lastRefitErr = ""
		bs.refits++
		bs.lastFit = m.now()
	}
	m.stmu.Unlock()
	refitsRunning.Add(-1)
	refitSeconds.Observe(m.now().Sub(start).Seconds())
	switch {
	case err == nil:
		refitsTotal.With("ok").Inc()
		absorbedSinceFit.With(name).Set(0) // the swapped-in model is fresh
	case errors.Is(err, context.Canceled):
		refitsTotal.With("canceled").Inc()
	default:
		refitsTotal.With("err").Inc()
	}
	if err != nil {
		m.logf("lifecycle: refit of %q failed after %v: %v", name, m.now().Sub(start).Round(time.Millisecond), err)
		return
	}
	m.logf("lifecycle: refit of %q done in %v", name, m.now().Sub(start).Round(time.Millisecond))
}

// refitOnce performs one refit cycle for a building. A cancelled ctx
// (manager shutting down) aborts the expensive training stages promptly;
// the old model keeps serving and nothing is swapped.
func (m *Manager) refitOnce(ctx context.Context, name string) error {
	sys, err := m.p.System(name)
	if err != nil {
		return err
	}
	// Copy the accumulated corpus (training + absorbed records) and
	// derive how many absorbs it covers from that one atomic snapshot —
	// reading the absorb count separately would open a window where a
	// racing absorb lands in neither the corpus nor the drain tail. The
	// training count is immutable once a system is fitted, so the
	// subtraction is exact.
	corpus := sys.CorpusRecords()
	drained := len(corpus) - sys.TrainingRecords()

	next := core.New(sys.Config())
	if err := next.AddTraining(corpus); err != nil {
		return fmt.Errorf("refit %q: %w", name, err)
	}
	// Re-apply AP retirements before training: the corpus records still
	// reference retired MACs, and without this the refit would resurrect
	// them — in the graph, in the embedding, and in the attribution index
	// rebuilt at swap time.
	for _, mac := range sys.RetiredMACs() {
		if err := next.RemoveMAC(mac); err != nil {
			return fmt.Errorf("refit %q: re-apply retirement of %q: %w", name, mac, err)
		}
	}
	if err := next.FitCtx(ctx); err != nil {
		return fmt.Errorf("refit %q: %w", name, err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	// Drain: absorbs that landed while Fit was running exist in the old
	// model and the WAL but not in the new fit; replay them so the swap
	// loses nothing. New absorbs are blocked (m.mu held exclusively), so
	// the tail is final. The drain itself runs to completion even on a
	// cancelled ctx — it is cheap, and stopping halfway would swap in a
	// model missing acknowledged absorbs.
	// grafics:ctxok deliberate: the drain must finish even on a cancelled refit ctx
	drainCtx := context.Background()
	for _, rec := range sys.AbsorbedSince(drained) {
		if _, err := next.Classify(drainCtx, &rec, core.WithAbsorb()); err != nil {
			// The corpus is a superset of the old model's, so this is
			// near-impossible; the scan stays journaled for the next boot.
			m.logf("lifecycle: refit %q: could not carry absorbed %q forward: %v", name, rec.ID, err)
		}
	}
	// Retirements that landed while Fit was running (or that a replayed
	// tail absorb re-introduced out of order) are settled against the old
	// system's final retirement set, which tracks retire-then-reabsorb
	// sequences.
	for _, mac := range sys.RetiredMACs() {
		if next.HasMAC(mac) {
			if err := next.RemoveMAC(mac); err != nil {
				m.logf("lifecycle: refit %q: could not carry retirement of %q forward: %v", name, mac, err)
			}
		}
	}
	if err := m.p.ReplaceSystem(name, next); err != nil {
		return fmt.Errorf("refit %q: %w", name, err)
	}
	hotSwapsTotal.Inc()
	// Persist the new fit. Failure is not fatal to the swap: the model is
	// live, the WAL still holds the absorbs, and the next snapshot
	// retries.
	if m.stateDir != "" {
		if err := m.snapshotLocked(); err != nil {
			m.logf("lifecycle: post-refit snapshot failed: %v", err)
		}
	}
	return nil
}

// ageLoop evaluates the age trigger on a timer.
func (m *Manager) ageLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.policy.CheckInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			for _, name := range m.p.Buildings() {
				m.maybeRefit(name)
			}
		}
	}
}

// Close stops the background triggers, waits for any in-flight refit to
// finish, and closes the journal. It does not snapshot; callers wanting a
// final snapshot (graceful shutdown) call Snapshot first.
func (m *Manager) Close() error {
	m.stmu.Lock()
	m.closing = true
	m.stmu.Unlock()
	m.stopOnce.Do(func() { close(m.stop) })
	// Abort in-flight refits before waiting on them: a half-trained model
	// is discarded, the live one keeps serving until the process exits.
	m.refitCancel()
	m.wg.Wait()
	if m.log == nil {
		return nil
	}
	return m.log.Close()
}

// BuildingStatus is one building's lifecycle state.
type BuildingStatus struct {
	Building string `json:"building"`
	// TrainingRecords is the size of the corpus the live model was fitted
	// on; AbsorbedSinceFit counts crowd scans layered on top of it since.
	TrainingRecords  int     `json:"training_records"`
	AbsorbedSinceFit int     `json:"absorbed_since_fit"`
	OverlayRatio     float64 `json:"overlay_ratio"`
	// LastFit is when the live model was fitted (process start or restore
	// time for models that have not refitted yet).
	LastFit   time.Time `json:"last_fit"`
	Refitting bool      `json:"refitting"`
	// RefitStartedAt is when the in-flight refit began (zero when none),
	// so an operator can spot a refit that has been running too long.
	RefitStartedAt time.Time `json:"refit_started_at"`
	Refits         int       `json:"refits"`
	// LastRefitError is the most recent refit failure, empty after a
	// success.
	LastRefitError string `json:"last_refit_error,omitempty"`
	// LastRefitAt is when the most recent refit attempt (success or
	// failure) finished; LastRefitDuration/LastRefitDurationMS are how
	// long it ran.
	LastRefitAt         time.Time     `json:"last_refit_at"`
	LastRefitDuration   time.Duration `json:"last_refit_duration_ns,omitempty"`
	LastRefitDurationMS float64       `json:"last_refit_duration_ms,omitempty"`
}

// Status is the fleet-wide lifecycle state, served by the admin API.
type Status struct {
	StateDir string `json:"state_dir,omitempty"`
	Policy   Policy `json:"policy"`
	// WALRecords counts absorbs journaled since the last truncation;
	// WALSegments/WALBytes describe the on-disk log.
	WALRecords  int   `json:"wal_records"`
	WALSegments int   `json:"wal_segments"`
	WALBytes    int64 `json:"wal_bytes"`
	// Replayed counts the journaled absorbs recovered at startup.
	Replayed     int              `json:"replayed"`
	Snapshots    int              `json:"snapshots"`
	LastSnapshot time.Time        `json:"last_snapshot"`
	Buildings    []BuildingStatus `json:"buildings"`
}

// Status reports the current lifecycle state of every building.
func (m *Manager) Status() Status {
	st := Status{StateDir: m.stateDir, Policy: m.policy}
	if m.log != nil {
		st.WALRecords = m.log.Appended()
		if ws, err := m.log.Stats(); err == nil {
			st.WALSegments = ws.Segments
			st.WALBytes = ws.Bytes
		}
	}
	for _, name := range m.p.Buildings() {
		sys, err := m.p.System(name)
		if err != nil {
			continue
		}
		bs := m.state(name)
		b := BuildingStatus{
			Building:         name,
			TrainingRecords:  sys.TrainingRecords(),
			AbsorbedSinceFit: sys.AbsorbedRecords(),
		}
		if b.TrainingRecords > 0 {
			b.OverlayRatio = float64(b.AbsorbedSinceFit) / float64(b.TrainingRecords)
		}
		m.stmu.Lock()
		b.LastFit = bs.lastFit
		b.Refitting = bs.refitting
		b.RefitStartedAt = bs.refitStarted
		b.Refits = bs.refits
		b.LastRefitError = bs.lastRefitErr
		b.LastRefitAt = bs.lastRefitAt
		b.LastRefitDuration = bs.lastRefitTime
		b.LastRefitDurationMS = float64(bs.lastRefitTime.Microseconds()) / 1000
		m.stmu.Unlock()
		st.Buildings = append(st.Buildings, b)
	}
	m.stmu.Lock()
	st.Replayed = m.replayed
	st.Snapshots = m.snapshots
	st.LastSnapshot = m.lastSnapshot
	m.stmu.Unlock()
	return st
}

// Refitting reports whether any building currently has a refit running.
func (m *Manager) Refitting() bool {
	m.stmu.Lock()
	defer m.stmu.Unlock()
	for _, bs := range m.st {
		if bs.refitting {
			return true
		}
	}
	return false
}
