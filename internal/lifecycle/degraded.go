package lifecycle

import (
	"errors"
	"time"
)

// ErrDegraded reports that the manager is in degraded read-only mode:
// the journal has failed persistently, so absorbs are refused — the
// durability contract is journal-before-ack and there is no journal to
// ack against — while read-only classifications keep flowing from the
// in-memory models. The server maps this to 503 with a Retry-After.
var ErrDegraded = errors.New("lifecycle: journal degraded, absorbs temporarily disabled")

// DegradedError is the concrete rejection admitAbsorb returns. It
// unwraps to ErrDegraded (so errors.Is keeps working everywhere) and
// carries the retry hint the HTTP layer turns into a Retry-After
// header.
type DegradedError struct {
	RetryAfter time.Duration
}

func (e *DegradedError) Error() string { return ErrDegraded.Error() }
func (e *DegradedError) Unwrap() error { return ErrDegraded }

const (
	// defaultDegradedThreshold is how many consecutive journal failures
	// flip the manager into degraded read-only mode. One failure is a
	// blip (the WAL already rotates past a poisoned segment); a run of
	// them is a sick disk.
	defaultDegradedThreshold = 3
	// defaultDegradedProbe is how often a degraded manager lets one
	// absorb through to probe the journal, and the Retry-After hint
	// given to shed clients.
	defaultDegradedProbe = 5 * time.Second
)

// admitAbsorb gates absorbing writes on journal health. Healthy (or
// journal-less) managers admit everything. A degraded manager refuses
// with ErrDegraded, except that once per probe interval a single
// absorb is admitted as the recovery probe: if its journal append
// succeeds the manager leaves degraded mode.
func (m *Manager) admitAbsorb() error {
	m.degMu.Lock()
	defer m.degMu.Unlock()
	if !m.degraded {
		return nil
	}
	now := m.now()
	if now.Before(m.degProbeAt) {
		degradedRejectsTotal.Inc()
		wait := m.degProbeAt.Sub(now)
		if wait < time.Second {
			wait = time.Second
		}
		return &DegradedError{RetryAfter: wait}
	}
	// This request is the probe; push the window so concurrent absorbs
	// keep shedding until its journal outcome is known.
	m.degProbeAt = now.Add(m.degProbe)
	return nil
}

// noteJournal feeds one journal append outcome into the degradation
// state machine.
func (m *Manager) noteJournal(err error) {
	m.degMu.Lock()
	defer m.degMu.Unlock()
	if err == nil {
		if m.degraded {
			m.logf("lifecycle: journal recovered, leaving degraded read-only mode")
			degradedGauge.Set(0)
		}
		m.degraded = false
		m.degFails = 0
		return
	}
	m.degFails++
	if !m.degraded && m.degFails >= m.degThreshold {
		m.degraded = true
		m.degProbeAt = m.now().Add(m.degProbe)
		m.logf("lifecycle: %d consecutive journal failures, entering degraded read-only mode (probe every %s)",
			m.degFails, m.degProbe)
		degradedGauge.Set(1)
	}
}

// Degraded reports whether the manager is refusing absorbs because of
// a sick journal, and how long a shed client should wait before
// retrying (at least one second, so a Retry-After header is never 0).
func (m *Manager) Degraded() (bool, time.Duration) {
	m.degMu.Lock()
	defer m.degMu.Unlock()
	if !m.degraded {
		return false, 0
	}
	wait := m.degProbeAt.Sub(m.now())
	if wait < time.Second {
		wait = time.Second
	}
	return true, wait
}
