package lifecycle

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/simulate"
	"repro/internal/wal"
)

// fastConfig keeps Fit cheap enough to run repeatedly in tests.
func fastConfig() core.Config {
	cfg := core.Config{}
	cfg.Embed = embed.DefaultConfig()
	cfg.Embed.SamplesPerEdge = 40
	return cfg
}

// campus builds one 3-floor building's labeled train split plus test pool.
func campus(t testing.TB, recordsPerFloor int, seed int64) (train, test []dataset.Record) {
	t.Helper()
	corpus, err := simulate.Generate(simulate.Campus3F(recordsPerFloor, seed))
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	train, test, err = dataset.Split(&corpus.Buildings[0], 0.7, rng)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	dataset.SelectLabels(train, 4, rng)
	return train, test
}

// openManaged opens a Manager over a fresh campus fleet.
func openManaged(t *testing.T, dir string, pol Policy, train []dataset.Record) *Manager {
	t.Helper()
	m, err := Open(fastConfig(), Options{StateDir: dir, Policy: pol, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(m.Portfolio().Buildings()) == 0 {
		if err := m.Portfolio().AddBuilding("campus", train); err != nil {
			t.Fatalf("AddBuilding: %v", err)
		}
	}
	return m
}

// absorbN absorbs the first n test scans through the Manager.
func absorbN(t *testing.T, m *Manager, pool []dataset.Record, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if _, err := m.Classify(ctx, &pool[i], core.WithAbsorb()); err != nil {
			t.Fatalf("absorb %d: %v", i, err)
		}
	}
}

// waitRefitDone polls until no refit is running.
func waitRefitDone(t *testing.T, m *Manager) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for m.Refitting() {
		if time.Now().After(deadline) {
			t.Fatal("refit did not finish within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// accuracy scores a classifier on a held-out pool.
func accuracy(t *testing.T, c core.Classifier, pool []dataset.Record) float64 {
	t.Helper()
	results, errs := c.ClassifyBatch(context.Background(), pool, core.WithoutEmbedding())
	ok := 0
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("holdout scan %d: %v", i, errs[i])
		}
		if results[i].Floor == pool[i].Floor {
			ok++
		}
	}
	return float64(ok) / float64(len(pool))
}

// TestCrashRecovery absorbs scans, drops the Manager without any shutdown
// snapshot (the SIGKILL story), and asserts a reopened Manager replays
// the WAL so every absorbed scan — including its novel MAC — is back.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	train, test := campus(t, 30, 5)
	m := openManaged(t, dir, Policy{}, train)
	// Initial snapshot so the restart has a model to restore.
	if err := m.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	newMAC := "ca:fe:00:00:00:01"
	rec := test[0]
	rec.Readings = append(rec.Readings[:len(rec.Readings):len(rec.Readings)],
		dataset.Reading{MAC: newMAC, RSS: -45})
	if _, err := m.Classify(context.Background(), &rec, core.WithAbsorb()); err != nil {
		t.Fatalf("absorb: %v", err)
	}
	absorbN(t, m, test[1:], 4)
	// No Snapshot, no Close: simulate a SIGKILL by abandoning the manager.

	m2, err := Open(fastConfig(), Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer m2.Close()
	if got := m2.Status().Replayed; got != 5 {
		t.Fatalf("replayed %d absorbs, want 5", got)
	}
	sys, err := m2.Portfolio().System("campus")
	if err != nil {
		t.Fatalf("restored fleet missing campus: %v", err)
	}
	if !sys.HasMAC(newMAC) {
		t.Fatal("absorbed MAC lost across crash")
	}
	if got := sys.AbsorbedRecords(); got != 5 {
		t.Fatalf("restored system has %d absorbed records, want 5", got)
	}
	// And it still serves.
	if _, err := m2.Classify(context.Background(), &test[6]); err != nil {
		t.Fatalf("classify after recovery: %v", err)
	}
}

// TestCrashRecoveryTornTail truncates the WAL mid-frame — a crash in the
// middle of an append — and asserts the Manager still boots, recovering
// every complete record.
func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	train, test := campus(t, 30, 7)
	m := openManaged(t, dir, Policy{}, train)
	if err := m.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	absorbN(t, m, test, 6)
	// Abandon (SIGKILL), then tear the final frame.
	walDir := walPath(dir)
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		if !e.IsDir() {
			last = filepath.Join(walDir, e.Name())
		}
	}
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(fastConfig(), Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("boot with torn WAL tail: %v", err)
	}
	defer m2.Close()
	if got := m2.Status().Replayed; got != 5 {
		t.Fatalf("replayed %d absorbs after torn tail, want 5 (all complete frames)", got)
	}
}

// TestRefitCorrectness is the swap-safety test: absorb labeled synthetic
// scans past the threshold, let the background refit hot-swap the model,
// and assert (a) held-out accuracy does not degrade and (b) every
// classification issued concurrently with the swap succeeds. Run under
// -race in CI.
func TestRefitCorrectness(t *testing.T) {
	dir := t.TempDir()
	train, test := campus(t, 40, 9)
	holdout := test[len(test)/2:]
	absorbPool := test[:len(test)/2]
	const threshold = 10
	if len(absorbPool) < threshold {
		t.Fatalf("need %d absorbable scans, have %d", threshold, len(absorbPool))
	}
	m := openManaged(t, dir, Policy{RefitAfterAbsorbs: threshold}, train)
	defer m.Close()

	before := accuracy(t, m, holdout)

	// Hammer the read path for the whole duration of absorb + refit +
	// swap; any failed classification fails the test.
	stopReads := make(chan struct{})
	var readers sync.WaitGroup
	readErr := make(chan error, 1)
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stopReads:
					return
				default:
				}
				rec := holdout[(i*7+w)%len(holdout)]
				if _, err := m.Classify(ctx, &rec, core.WithoutEmbedding()); err != nil {
					select {
					case readErr <- fmt.Errorf("reader %d scan %d: %w", w, i, err):
					default:
					}
					return
				}
			}
		}(w)
	}

	absorbN(t, m, absorbPool, threshold)
	waitRefitDone(t, m)
	close(stopReads)
	readers.Wait()
	select {
	case err := <-readErr:
		t.Fatalf("concurrent classification failed during refit/swap: %v", err)
	default:
	}

	st := m.Status()
	if len(st.Buildings) != 1 || st.Buildings[0].Refits < 1 {
		t.Fatalf("expected at least one completed refit, status %+v", st.Buildings)
	}
	if st.Buildings[0].LastRefitError != "" {
		t.Fatalf("refit reported error: %s", st.Buildings[0].LastRefitError)
	}
	// The refitted model trained on the absorbed scans: the graph now has
	// them as training records, and the absorb ledger restarted.
	sys, _ := m.Portfolio().System("campus")
	if got, want := sys.TrainingRecords(), len(train)+threshold; got < want {
		t.Fatalf("refitted model trained on %d records, want >= %d", got, want)
	}

	after := accuracy(t, m, holdout)
	// The corpus only grew, so accuracy must hold up. The holdout is a few
	// dozen scans and E-LINE training is stochastic, so a couple of flips
	// are noise; a broken swap (wrong model, torn state) lands far below
	// both bounds.
	if after < before-0.1 || after < 0.75 {
		t.Fatalf("holdout accuracy degraded after refit: %.3f -> %.3f", before, after)
	}
	t.Logf("holdout accuracy before refit %.3f, after %.3f", before, after)

	// Post-refit the WAL is truncated (absorbs are inside the snapshot).
	if st.WALRecords != 0 {
		t.Fatalf("WAL holds %d records after post-refit snapshot, want 0", st.WALRecords)
	}
	if st.Snapshots < 1 {
		t.Fatal("no snapshot written after refit")
	}

	// A restart restores the refitted fleet with nothing to replay.
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	m2, err := Open(fastConfig(), Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	if got := m2.Status().Replayed; got != 0 {
		t.Fatalf("replayed %d records after clean refit+snapshot, want 0", got)
	}
	sys2, err := m2.Portfolio().System("campus")
	if err != nil {
		t.Fatal(err)
	}
	if got := sys2.TrainingRecords(); got != sys.TrainingRecords() {
		t.Fatalf("restored model has %d training records, want %d", got, sys.TrainingRecords())
	}
}

// TestAbsorbsDuringRefitSurviveSwap pins the drain logic: absorbs that
// land while the background Fit is running must exist in the swapped-in
// model.
func TestAbsorbsDuringRefitSurviveSwap(t *testing.T) {
	dir := t.TempDir()
	train, test := campus(t, 40, 21)
	m := openManaged(t, dir, Policy{}, train)
	defer m.Close()
	ctx := context.Background()

	// Start a forced refit, then race absorbs against it. The drain phase
	// replays every absorb that beat the swap; absorbs after the swap land
	// in the new model directly. Either way nothing may be lost.
	macFor := func(i int) string { return fmt.Sprintf("dd:ee:ff:00:00:%02x", i) }
	started, err := m.ForceRefit("campus")
	if err != nil || len(started) != 1 {
		t.Fatalf("ForceRefit: started=%v err=%v", started, err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		rec := test[i]
		rec.Readings = append(rec.Readings[:len(rec.Readings):len(rec.Readings)],
			dataset.Reading{MAC: macFor(i), RSS: -50})
		if _, err := m.Classify(ctx, &rec, core.WithAbsorb()); err != nil {
			t.Fatalf("absorb %d during refit: %v", i, err)
		}
	}
	waitRefitDone(t, m)

	sys, err := m.Portfolio().System("campus")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !sys.HasMAC(macFor(i)) {
			t.Fatalf("absorb %d lost across the hot swap", i)
		}
	}
	if st := m.Status(); st.Buildings[0].LastRefitError != "" {
		t.Fatalf("refit error: %s", st.Buildings[0].LastRefitError)
	}
}

// TestSnapshotTruncatesWAL checks the snapshot/WAL handshake: journaled
// absorbs are dropped from the log exactly when a snapshot has captured
// them.
func TestSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	train, test := campus(t, 30, 23)
	m := openManaged(t, dir, Policy{}, train)
	defer m.Close()
	absorbN(t, m, test, 3)
	if got := m.Status().WALRecords; got != 3 {
		t.Fatalf("WAL records = %d, want 3", got)
	}
	if err := m.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	st := m.Status()
	if st.WALRecords != 0 {
		t.Fatalf("WAL records after snapshot = %d, want 0", st.WALRecords)
	}
	if st.Snapshots != 1 || st.LastSnapshot.IsZero() {
		t.Fatalf("snapshot accounting wrong: %+v", st)
	}
	// The replayless restart proves the snapshot covered everything.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(fastConfig(), Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	sys, err := m2.Portfolio().System("campus")
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.AbsorbedRecords(); got != 3 {
		t.Fatalf("restored absorbed records = %d, want 3 (from snapshot, not replay)", got)
	}
	if got := m2.Status().Replayed; got != 0 {
		t.Fatalf("replayed = %d, want 0", got)
	}
}

// TestOverlayRatioTrigger exercises the ratio-based staleness policy.
func TestOverlayRatioTrigger(t *testing.T) {
	dir := t.TempDir()
	train, test := campus(t, 30, 25)
	m := openManaged(t, dir, Policy{MaxOverlayRatio: 0.08}, train)
	defer m.Close()
	// len(train) scans * 0.08 rounds to a handful of absorbs.
	want := int(float64(len(train))*0.08) + 1
	absorbN(t, m, test, want)
	waitRefitDone(t, m)
	if st := m.Status(); st.Buildings[0].Refits < 1 {
		t.Fatalf("ratio trigger did not refit: %+v", st.Buildings[0])
	}
}

// TestAgeTrigger exercises the wall-clock trigger with a fake clock.
func TestAgeTrigger(t *testing.T) {
	dir := t.TempDir()
	train, _ := campus(t, 30, 27)
	var clock struct {
		mu  sync.Mutex
		now time.Time
	}
	clock.now = time.Unix(1_700_000_000, 0)
	now := func() time.Time {
		clock.mu.Lock()
		defer clock.mu.Unlock()
		return clock.now
	}
	m, err := Open(fastConfig(), Options{
		StateDir: dir,
		Policy:   Policy{MaxModelAge: time.Hour, CheckInterval: 10 * time.Millisecond},
		Logf:     t.Logf,
		Now:      now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Portfolio().AddBuilding("campus", train); err != nil {
		t.Fatal(err)
	}
	m.state("campus") // materialize lastFit under the fake clock
	clock.mu.Lock()
	clock.now = clock.now.Add(2 * time.Hour)
	clock.mu.Unlock()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := m.Status(); len(st.Buildings) > 0 && st.Buildings[0].Refits >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("age trigger did not refit within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestManagerWithoutStateDir runs the refit policy with durability
// disabled: no WAL, no snapshots, refits still happen.
func TestManagerWithoutStateDir(t *testing.T) {
	train, test := campus(t, 30, 29)
	m, err := Open(fastConfig(), Options{Policy: Policy{RefitAfterAbsorbs: 3}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Portfolio().AddBuilding("campus", train); err != nil {
		t.Fatal(err)
	}
	absorbN(t, m, test, 3)
	waitRefitDone(t, m)
	st := m.Status()
	if st.Buildings[0].Refits < 1 {
		t.Fatalf("refit did not run without state dir: %+v", st.Buildings[0])
	}
	if st.WALRecords != 0 || st.WALSegments != 0 {
		t.Fatalf("unexpected WAL activity without state dir: %+v", st)
	}
	if err := m.Snapshot(); err != nil {
		t.Fatalf("Snapshot without state dir should be a no-op, got %v", err)
	}
}

// TestRetirementSurvivesCrashAndRefit: DELETE-style AP retirements must
// survive both a SIGKILL (WAL replay) and a refit (graph rebuild from
// records whose readings still reference the MAC).
func TestRetirementSurvivesCrashAndRefit(t *testing.T) {
	dir := t.TempDir()
	train, test := campus(t, 30, 33)
	m := openManaged(t, dir, Policy{}, train)
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	victim := train[0].Readings[0].MAC
	if _, err := m.RemoveMAC(victim); err != nil {
		t.Fatalf("RemoveMAC: %v", err)
	}
	// SIGKILL: abandon without snapshot; the retirement lives only in the
	// WAL.
	m2, err := Open(fastConfig(), Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	sys, err := m2.Portfolio().System("campus")
	if err != nil {
		t.Fatal(err)
	}
	if sys.HasMAC(victim) {
		t.Fatal("retirement lost across crash (WAL replay)")
	}

	// A refit rebuilds the graph from the accumulated records; the
	// retirement must not be resurrected.
	absorbN(t, m2, test, 2)
	if started, err := m2.ForceRefit("campus"); err != nil || len(started) != 1 {
		t.Fatalf("ForceRefit: %v %v", started, err)
	}
	waitRefitDone(t, m2)
	if st := m2.Status(); st.Buildings[0].LastRefitError != "" {
		t.Fatalf("refit error: %s", st.Buildings[0].LastRefitError)
	}
	sys, err = m2.Portfolio().System("campus")
	if err != nil {
		t.Fatal(err)
	}
	if sys.HasMAC(victim) {
		t.Fatal("retirement resurrected by refit")
	}
	// And the post-refit snapshot carries it: one more clean restart.
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3, err := Open(fastConfig(), Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen after refit: %v", err)
	}
	defer m3.Close()
	sys, err = m3.Portfolio().System("campus")
	if err != nil {
		t.Fatal(err)
	}
	if sys.HasMAC(victim) {
		t.Fatal("retirement lost from post-refit snapshot")
	}
}

// TestWALRecordShape pins the journal format: building attribution plus
// the client's original scan.
func TestWALRecordShape(t *testing.T) {
	dir := t.TempDir()
	train, test := campus(t, 30, 31)
	m := openManaged(t, dir, Policy{}, train)
	rec := test[0]
	if _, err := m.Classify(context.Background(), &rec, core.WithAbsorb()); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	var got []wal.Record
	if _, err := wal.Replay(walPath(dir), func(r wal.Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Building != "campus" || got[0].Scan.ID != rec.ID {
		t.Fatalf("journal = %+v, want one campus record %q", got, rec.ID)
	}
}
