package lifecycle

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/wal"
)

// TestDegradedReadOnlyMode kills the journal disk under a manager and
// walks the full degradation cycle: consecutive journal failures trip
// degraded mode, absorbs are refused with ErrDegraded (carrying a
// Retry-After hint) without touching the sick disk, reads keep serving,
// and once the disk heals the next probe absorb restores write service.
func TestDegradedReadOnlyMode(t *testing.T) {
	train, test := campus(t, 30, 7)
	disk := fault.NewDisk()

	var clockMu sync.Mutex
	clock := time.Now()
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		defer clockMu.Unlock()
		clock = clock.Add(d)
	}

	m, err := Open(fastConfig(), Options{
		StateDir:          t.TempDir(),
		Logf:              t.Logf,
		Now:               now,
		DegradedThreshold: 2,
		DegradedProbe:     5 * time.Second,
		WAL: wal.Options{
			OpenFile: func(name string, flag int, perm os.FileMode) (wal.File, error) {
				return disk.OpenFile(name, flag, perm)
			},
		},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer m.Close()
	if err := m.Portfolio().AddBuilding("campus", train); err != nil {
		t.Fatalf("AddBuilding: %v", err)
	}
	ctx := context.Background()

	if _, err := m.Classify(ctx, &test[0], core.WithAbsorb()); err != nil {
		t.Fatalf("healthy absorb: %v", err)
	}

	disk.FailWritesAfter(0, errors.New("disk died"))
	for i := 1; i <= 2; i++ {
		_, err := m.Classify(ctx, &test[i], core.WithAbsorb())
		if err == nil {
			t.Fatalf("absorb %d: expected journal failure", i)
		}
		if errors.Is(err, ErrDegraded) {
			t.Fatalf("absorb %d: degraded before threshold: %v", i, err)
		}
	}

	// Threshold reached: absorbs now shed without touching the disk.
	_, err = m.Classify(ctx, &test[3], core.WithAbsorb())
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("expected ErrDegraded, got %v", err)
	}
	var deg *DegradedError
	if !errors.As(err, &deg) || deg.RetryAfter <= 0 {
		t.Fatalf("expected DegradedError with positive RetryAfter, got %#v", err)
	}
	if degraded, _ := m.Degraded(); !degraded {
		t.Fatal("Degraded() = false while shedding absorbs")
	}

	// Reads are unaffected.
	if _, err := m.Classify(ctx, &test[4]); err != nil {
		t.Fatalf("read while degraded: %v", err)
	}

	// Heal the disk; before the probe window absorbs are still refused.
	disk.Heal()
	_, err = m.Classify(ctx, &test[5], core.WithAbsorb())
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("expected ErrDegraded before probe window, got %v", err)
	}

	// Past the probe window one absorb is admitted; its journal append
	// succeeds and clears degraded mode.
	advance(6 * time.Second)
	if _, err := m.Classify(ctx, &test[6], core.WithAbsorb()); err != nil {
		t.Fatalf("probe absorb after heal: %v", err)
	}
	if degraded, _ := m.Degraded(); degraded {
		t.Fatal("Degraded() = true after successful probe")
	}
	if _, err := m.Classify(ctx, &test[7], core.WithAbsorb()); err != nil {
		t.Fatalf("absorb after recovery: %v", err)
	}
}

// TestDegradedProbeFailureStaysDegraded verifies a failed probe keeps
// the manager degraded and re-arms the probe window rather than letting
// every absorb through to a still-sick disk.
func TestDegradedProbeFailureStaysDegraded(t *testing.T) {
	train, test := campus(t, 30, 11)
	disk := fault.NewDisk()

	var clockMu sync.Mutex
	clock := time.Now()
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		defer clockMu.Unlock()
		clock = clock.Add(d)
	}

	m, err := Open(fastConfig(), Options{
		StateDir:          t.TempDir(),
		Logf:              t.Logf,
		Now:               now,
		DegradedThreshold: 1,
		DegradedProbe:     5 * time.Second,
		WAL: wal.Options{
			OpenFile: func(name string, flag int, perm os.FileMode) (wal.File, error) {
				return disk.OpenFile(name, flag, perm)
			},
		},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer m.Close()
	if err := m.Portfolio().AddBuilding("campus", train); err != nil {
		t.Fatalf("AddBuilding: %v", err)
	}
	ctx := context.Background()

	disk.FailWritesAfter(0, errors.New("disk died"))
	if _, err := m.Classify(ctx, &test[0], core.WithAbsorb()); err == nil {
		t.Fatal("expected journal failure")
	}

	// Probe while still sick: admitted, fails, stays degraded.
	advance(6 * time.Second)
	_, err = m.Classify(ctx, &test[1], core.WithAbsorb())
	if err == nil || errors.Is(err, ErrDegraded) {
		t.Fatalf("probe should reach the disk and fail, got %v", err)
	}
	if degraded, _ := m.Degraded(); !degraded {
		t.Fatal("manager left degraded mode on a failed probe")
	}
	// And the window is re-armed: immediate retry sheds again.
	_, err = m.Classify(ctx, &test[2], core.WithAbsorb())
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("expected ErrDegraded right after failed probe, got %v", err)
	}
}
