package lifecycle

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
)

// slowConfig makes Fit expensive enough (seconds) that a refit is
// reliably in flight when Close races it.
func slowConfig() core.Config {
	cfg := core.Config{}
	cfg.Embed = embed.DefaultConfig()
	cfg.Embed.SamplesPerEdge = 4000
	return cfg
}

// TestCloseAbortsInFlightRefit is the shutdown acceptance test: kill a
// refit mid-flight and assert a prompt, clean abort with the old model
// still serving. The initial fit measures how long training takes on this
// machine; Close during the refit must return in a fraction of that.
func TestCloseAbortsInFlightRefit(t *testing.T) {
	train, test := campus(t, 40, 21)
	m, err := Open(slowConfig(), Options{Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fitStart := time.Now()
	if err := m.Portfolio().AddBuilding("campus", train); err != nil {
		t.Fatalf("AddBuilding: %v", err)
	}
	fitDuration := time.Since(fitStart)

	started, err := m.ForceRefit("campus")
	if err != nil {
		t.Fatalf("ForceRefit: %v", err)
	}
	if len(started) != 1 {
		t.Fatalf("started = %v, want [campus]", started)
	}
	// Catch the in-flight status while the refit runs.
	var sawInFlight bool
	for i := 0; i < 200 && !sawInFlight; i++ {
		for _, b := range m.Status().Buildings {
			if b.Refitting && !b.RefitStartedAt.IsZero() {
				sawInFlight = true
			}
		}
		time.Sleep(time.Millisecond)
	}

	closeStart := time.Now()
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	closeDuration := time.Since(closeStart)
	if closeDuration > fitDuration/2+200*time.Millisecond {
		t.Errorf("Close took %v against a %v fit — the refit was not aborted promptly", closeDuration, fitDuration)
	}
	if !sawInFlight {
		t.Error("never observed Refitting with a RefitStartedAt timestamp")
	}

	// The old model must still be serving and no swap recorded.
	if _, err := m.Portfolio().Classify(context.Background(), &test[0], core.WithoutEmbedding()); err != nil {
		t.Fatalf("classify after aborted refit: %v", err)
	}
	for _, b := range m.Status().Buildings {
		if b.Refits != 0 {
			t.Errorf("aborted refit was counted as a success: %+v", b)
		}
		if !strings.Contains(b.LastRefitError, "context canceled") {
			t.Errorf("LastRefitError = %q, want a context cancellation", b.LastRefitError)
		}
		if b.Refitting || !b.RefitStartedAt.IsZero() {
			t.Errorf("refit still marked in flight after Close: %+v", b)
		}
	}
}

// TestStatusRefitTimings: after a completed refit the per-building status
// must expose when it finished and how long it ran; no refit may be
// marked in flight.
func TestStatusRefitTimings(t *testing.T) {
	train, test := campus(t, 30, 22)
	m := openManaged(t, "", Policy{}, train)
	defer m.Close()
	absorbN(t, m, test, 3)

	before := m.Status().Buildings[0]
	if !before.LastRefitAt.IsZero() || before.LastRefitDurationMS != 0 {
		t.Fatalf("refit timings set before any refit: %+v", before)
	}
	if _, err := m.ForceRefit("campus"); err != nil {
		t.Fatalf("ForceRefit: %v", err)
	}
	waitRefitDone(t, m)
	b := m.Status().Buildings[0]
	if b.Refits != 1 || b.LastRefitError != "" {
		t.Fatalf("refit did not succeed: %+v", b)
	}
	if b.LastRefitAt.IsZero() {
		t.Error("LastRefitAt not set after a refit")
	}
	if b.LastRefitDuration <= 0 || b.LastRefitDurationMS <= 0 {
		t.Errorf("refit duration not recorded: ns=%d ms=%v", b.LastRefitDuration, b.LastRefitDurationMS)
	}
	if got := time.Duration(b.LastRefitDurationMS * float64(time.Millisecond)); got > b.LastRefitDuration*2 {
		t.Errorf("duration fields disagree: %v vs %v", got, b.LastRefitDuration)
	}
	if b.Refitting || !b.RefitStartedAt.IsZero() {
		t.Errorf("idle building marked refitting: %+v", b)
	}
}
