// Lifecycle observability instruments: the durable-write throughput,
// the refit machinery (how often models retrain, how long it takes,
// whether swaps land), and per-building staleness — the gauges an
// operator watches to decide whether the refit policy keeps up with the
// crowd's absorb rate.

package lifecycle

import "repro/internal/obs"

var (
	journaledWritesTotal = obs.Default().Counter("grafics_lifecycle_journaled_writes_total",
		"Writes (absorbs, retirements) journaled to the WAL before acknowledgment.")
	replayedTotal = obs.Default().Counter("grafics_lifecycle_wal_replayed_total",
		"Journaled records replayed into restored models at open.")

	refitsTotal = obs.Default().CounterVec("grafics_lifecycle_refits_total",
		"Completed background refits by result (ok, err, canceled).", "result")
	refitSeconds = obs.Default().Histogram("grafics_lifecycle_refit_seconds",
		"Wall time of one background refit: train, drain, hot swap, snapshot.", obs.TimeBuckets)
	refitsRunning = obs.Default().Gauge("grafics_lifecycle_refits_running",
		"Background refits in flight.")
	hotSwapsTotal = obs.Default().Counter("grafics_lifecycle_hot_swaps_total",
		"Models atomically replaced by a refit.")

	snapshotsTotal = obs.Default().Counter("grafics_lifecycle_snapshots_total",
		"Fleet snapshots written (each truncates the WAL).")
	lastSnapshotUnix = obs.Default().Gauge("grafics_lifecycle_last_snapshot_timestamp_seconds",
		"Unix time of the most recent snapshot; 0 until one is written.")

	absorbedSinceFit = obs.Default().GaugeVec("grafics_lifecycle_absorbed_since_fit",
		"Scans absorbed into a building's graph since its model was last fitted.", "building")

	degradedGauge = obs.Default().Gauge("grafics_lifecycle_degraded",
		"1 while the journal is sick and absorbs are refused (degraded read-only mode).")
	degradedRejectsTotal = obs.Default().Counter("grafics_lifecycle_degraded_rejects_total",
		"Absorbs refused with ErrDegraded while in degraded read-only mode.")
)
