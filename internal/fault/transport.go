package fault

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"time"
)

// partMode is what happens to a request aimed at a partitioned host.
type partMode int

const (
	partCut  partMode = iota // fail fast, like a refused connection
	partHang                 // blackhole until the request context expires
)

// Transport is an http.RoundTripper that injects network faults in
// front of a real transport. Hosts are matched on URL.Host (host:port).
// Fault schedules are counter-based; the only randomness is latency
// jitter, drawn from a seeded generator so a given seed replays the
// same delays. Safe for concurrent use.
//
// The zero-fault state forwards every request untouched.
type Transport struct {
	base http.RoundTripper

	mu sync.Mutex
	// grafics:guardedby mu
	rng *rand.Rand
	// grafics:guardedby mu
	parts map[string]partMode
	// grafics:guardedby mu
	latency time.Duration
	// grafics:guardedby mu
	jitter time.Duration
	// grafics:guardedby mu
	failN int // requests remaining in the current 5xx burst
	// grafics:guardedby mu
	failStatus int
}

// NewTransport wraps base (http.DefaultTransport when nil) with a fault
// injector whose latency jitter is driven by seed.
func NewTransport(base http.RoundTripper, seed uint64) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		base:  base,
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		parts: make(map[string]partMode),
	}
}

// Partition makes every request to the given hosts fail immediately, as
// a severed link would.
func (t *Transport) Partition(hosts ...string) { t.setPart(partCut, hosts) }

// Blackhole makes every request to the given hosts hang until the
// request's context expires — the shape of a timeout, not a refusal.
func (t *Transport) Blackhole(hosts ...string) { t.setPart(partHang, hosts) }

func (t *Transport) setPart(mode partMode, hosts []string) {
	t.mu.Lock()
	for _, h := range hosts {
		t.parts[h] = mode
	}
	t.mu.Unlock()
}

// HealPartition reconnects the given hosts (all of them when none are
// named).
func (t *Transport) HealPartition(hosts ...string) {
	t.mu.Lock()
	if len(hosts) == 0 {
		t.parts = make(map[string]partMode)
	}
	for _, h := range hosts {
		delete(t.parts, h)
	}
	t.mu.Unlock()
}

// SetLatency delays every forwarded request by base plus a uniformly
// drawn jitter. Zero/zero heals.
func (t *Transport) SetLatency(base, jitter time.Duration) {
	t.mu.Lock()
	t.latency, t.jitter = base, jitter
	t.mu.Unlock()
}

// FailNext answers the next n requests with the given 5xx status
// instead of forwarding them — a server-side error burst.
func (t *Transport) FailNext(n, status int) {
	t.mu.Lock()
	t.failN, t.failStatus = n, status
	t.mu.Unlock()
}

// admit decides one request's fate under the armed faults.
func (t *Transport) admit(host string) (mode partMode, cut bool, delay time.Duration, status int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.latency > 0 || t.jitter > 0 {
		delay = t.latency
		if t.jitter > 0 {
			delay += time.Duration(t.rng.Int64N(int64(t.jitter)))
		}
	}
	if m, ok := t.parts[host]; ok {
		return m, true, delay, 0
	}
	if t.failN > 0 {
		t.failN--
		return 0, false, delay, t.failStatus
	}
	return 0, false, delay, 0
}

// RoundTrip applies the armed faults to req, forwarding it when it
// survives them.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	mode, cut, delay, status := t.admit(req.URL.Host)
	if delay > 0 {
		injected(KindHTTPSlow)
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if cut {
		switch mode {
		case partHang:
			injected(KindHTTPHang)
			<-req.Context().Done()
			return nil, fmt.Errorf("fault: blackholed %s: %w", req.URL.Host, req.Context().Err())
		default:
			injected(KindHTTPCut)
			return nil, fmt.Errorf("%w: partitioned from %s", ErrInjected, req.URL.Host)
		}
	}
	if status != 0 {
		injected(KindHTTP5xx)
		return &http.Response{
			Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
			StatusCode:    status,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:          io.NopCloser(strings.NewReader("fault: injected error\n")),
			ContentLength: -1,
			Request:       req,
		}, nil
	}
	return t.base.RoundTrip(req)
}
