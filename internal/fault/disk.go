package fault

import (
	"errors"
	"io/fs"
	"os"
	"sync"
	"syscall"
	"time"
)

// ErrInjected is the base error for injected write and sync failures,
// so tests can assert a failure came from the harness rather than the
// real disk.
var ErrInjected = errors.New("fault: injected")

// Disk injects write-path faults into every file opened through it. A
// test arms faults on the Disk; the wrapped files consult it on each
// Write/WriteAt/Sync. All methods are safe for concurrent use, and all
// fault schedules are counter-based (deterministic), never random.
//
// The zero state injects nothing: a freshly-made Disk behaves exactly
// like os.OpenFile until a fault is armed.
type Disk struct {
	mu sync.Mutex
	// grafics:guardedby mu
	writeBudget int64 // successful writes remaining before writeErr fires; -1 = unlimited
	// grafics:guardedby mu
	writeErr error // error for exhausted writeBudget; nil disables the fault
	// grafics:guardedby mu
	tornIn int64 // the tornIn-th write from now persists half and fails; 0 = disabled
	// grafics:guardedby mu
	byteBudget int64 // bytes accepted before ENOSPC; -1 = unlimited
	// grafics:guardedby mu
	syncDelay time.Duration // every Sync sleeps this long first
	// grafics:guardedby mu
	syncErr error // every Sync fails with this; nil = healthy
}

// NewDisk returns a healthy Disk with no faults armed.
func NewDisk() *Disk {
	return &Disk{writeBudget: -1, byteBudget: -1}
}

// FailWritesAfter lets the next n writes succeed, then fails every
// subsequent write with err (ErrInjected when err is nil) without
// persisting any bytes. Heal or a fresh arm clears it.
func (d *Disk) FailWritesAfter(n int, err error) {
	if err == nil {
		err = ErrInjected
	}
	d.mu.Lock()
	d.writeBudget, d.writeErr = int64(n), err
	d.mu.Unlock()
}

// TearWriteAfter arms a one-shot torn write: the (n+1)-th write from
// now persists only the first half of its bytes and then fails — the
// on-disk signature of a crash mid-append.
func (d *Disk) TearWriteAfter(n int) {
	d.mu.Lock()
	d.tornIn = int64(n) + 1
	d.mu.Unlock()
}

// LimitBytes accepts up to n more written bytes, then fails with
// ENOSPC. Like a real full disk, the write that crosses the limit may
// persist a prefix. Pass a negative n to lift the limit.
func (d *Disk) LimitBytes(n int64) {
	d.mu.Lock()
	d.byteBudget = n
	d.mu.Unlock()
}

// SlowSync makes every Sync sleep for delay before touching the disk,
// modeling a saturated or failing device. Zero heals.
func (d *Disk) SlowSync(delay time.Duration) {
	d.mu.Lock()
	d.syncDelay = delay
	d.mu.Unlock()
}

// FailSyncs makes every Sync fail with err (ErrInjected when nil would
// otherwise disarm — pass nil to heal).
func (d *Disk) FailSyncs(err error) {
	d.mu.Lock()
	d.syncErr = err
	d.mu.Unlock()
}

// Heal clears every armed fault; subsequent I/O is passed through
// untouched.
func (d *Disk) Heal() {
	d.mu.Lock()
	d.writeBudget, d.writeErr = -1, nil
	d.tornIn = 0
	d.byteBudget = -1
	d.syncDelay = 0
	d.syncErr = nil
	d.mu.Unlock()
}

// OpenFile opens name like os.OpenFile and wraps it so writes and syncs
// consult this Disk. It matches the open-file hook signatures exposed
// by wal.Options and fleet.FollowerOptions.
func (d *Disk) OpenFile(name string, flag int, perm os.FileMode) (*File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &File{d: d, f: f}, nil
}

// admitWrite decides the fate of an n-byte write: how many bytes may
// reach the file and the error to report afterwards (nil = clean).
func (d *Disk) admitWrite(n int) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.writeErr != nil {
		if d.writeBudget <= 0 {
			injected(KindWriteErr)
			return 0, d.writeErr
		}
		d.writeBudget--
	}
	if d.tornIn > 0 {
		d.tornIn--
		if d.tornIn == 0 {
			injected(KindTornWrite)
			return n / 2, ErrInjected
		}
	}
	if d.byteBudget >= 0 {
		if int64(n) > d.byteBudget {
			k := int(d.byteBudget)
			d.byteBudget = 0
			injected(KindENOSPC)
			return k, &fs.PathError{Op: "write", Path: "fault", Err: syscall.ENOSPC}
		}
		d.byteBudget -= int64(n)
	}
	return n, nil
}

// admitSync returns the delay to impose and the error to report for one
// Sync call.
func (d *Disk) admitSync() (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.syncDelay > 0 {
		injected(KindSlowSync)
	}
	if d.syncErr != nil {
		injected(KindSyncErr)
	}
	return d.syncDelay, d.syncErr
}

// File is an *os.File whose write path is subject to its Disk's armed
// faults. Reads are never faulted: the chaos suite injures the durable
// path and asserts recovery reads back clean.
type File struct {
	d *Disk
	f *os.File
}

// Write persists p, subject to the Disk's armed write faults.
func (f *File) Write(p []byte) (int, error) {
	k, ferr := f.d.admitWrite(len(p))
	if ferr == nil {
		return f.f.Write(p)
	}
	n := 0
	if k > 0 {
		var werr error
		n, werr = f.f.Write(p[:k])
		if werr != nil {
			return n, werr
		}
	}
	return n, ferr
}

// WriteAt persists p at off, subject to the same faults as Write.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	k, ferr := f.d.admitWrite(len(p))
	if ferr == nil {
		return f.f.WriteAt(p, off)
	}
	n := 0
	if k > 0 {
		var werr error
		n, werr = f.f.WriteAt(p[:k], off)
		if werr != nil {
			return n, werr
		}
	}
	return n, ferr
}

// Sync flushes the file, subject to the Disk's sync delay and error.
func (f *File) Sync() error {
	delay, ferr := f.d.admitSync()
	if delay > 0 {
		time.Sleep(delay)
	}
	if ferr != nil {
		return ferr
	}
	return f.f.Sync()
}

// Close closes the underlying file. Close is never faulted.
func (f *File) Close() error { return f.f.Close() }

// Name returns the underlying file's name.
func (f *File) Name() string { return f.f.Name() }
