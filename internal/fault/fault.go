// Package fault is the deterministic fault-injection layer behind the
// chaos suite. It wraps the two boundaries where GRAFICS touches the
// outside world — files (the WAL and follower mirrors) and HTTP (fleet
// replication and routing) — and injects the failures a crowd-grown
// fleet actually meets: write errors after N successes, torn writes,
// ENOSPC, slow or failing fsync, network partitions, request hangs,
// 5xx bursts, and added latency.
//
// Everything is seed-driven and counter-based rather than wall-clock
// probabilistic, so a chaos test replays the same fault schedule on
// every run: "the 3rd write tears" is reproducible, "2% of writes
// tear" is not. Faults are armed and healed at runtime, which is how a
// scenario models recovery (the disk fills, the operator frees space,
// the node resumes).
//
// Production code never imports this package's injectors directly; it
// accepts the narrow seams (an open-file hook, an http.RoundTripper)
// and defaults to the real thing. Every injected fault increments
// grafics_fault_injected_total{kind} so a chaos run is auditable from
// the metrics surface alone.
package fault

import "repro/internal/obs"

var faultInjectedTotal = obs.Default().CounterVec("grafics_fault_injected_total",
	"Faults injected by the internal/fault layer, by kind.", "kind")

// injected records one injected fault of the given kind.
func injected(kind string) { faultInjectedTotal.With(kind).Inc() }

// Kinds reported in grafics_fault_injected_total. Exported so tests and
// the metrics e2e can assert on the exact label values.
const (
	KindWriteErr  = "write_err"  // write failed after the armed budget of successes
	KindTornWrite = "torn_write" // write persisted only a prefix, then failed
	KindENOSPC    = "enospc"     // write exhausted the disk-space budget
	KindSyncErr   = "sync_err"   // fsync failed
	KindSlowSync  = "slow_sync"  // fsync delayed
	KindHTTPCut   = "http_cut"   // request refused (partition, fail-fast)
	KindHTTPHang  = "http_hang"  // request blackholed until its context expired
	KindHTTP5xx   = "http_5xx"   // request answered with an injected 5xx
	KindHTTPSlow  = "http_slow"  // request delayed
)
