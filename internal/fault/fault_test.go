package fault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func get(t *testing.T, hc *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return hc.Do(req)
}

func TestTransportFailNextThenRecovers(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	tr := NewTransport(nil, 1)
	tr.FailNext(2, http.StatusServiceUnavailable)
	hc := &http.Client{Transport: tr}

	for i := 0; i < 2; i++ {
		resp, err := get(t, hc, srv.URL)
		if err != nil {
			t.Fatalf("burst request %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("burst request %d: status %d, want 503", i, resp.StatusCode)
		}
	}
	resp, err := get(t, hc, srv.URL)
	if err != nil {
		t.Fatalf("post-burst request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-burst status %d, want 200", resp.StatusCode)
	}
}

func TestTransportPartitionAndHeal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	host := srv.Listener.Addr().String()

	tr := NewTransport(nil, 2)
	tr.Partition(host)
	hc := &http.Client{Transport: tr}

	if _, err := get(t, hc, srv.URL); err == nil {
		t.Fatal("partitioned request succeeded")
	} else if !errors.Is(err, ErrInjected) {
		// http.Client wraps the transport error in *url.Error.
		t.Fatalf("partitioned request error = %v, want ErrInjected", err)
	}
	tr.HealPartition()
	resp, err := get(t, hc, srv.URL)
	if err != nil {
		t.Fatalf("healed request: %v", err)
	}
	resp.Body.Close()
}

func TestTransportBlackholeHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	host := srv.Listener.Addr().String()

	tr := NewTransport(nil, 3)
	tr.Blackhole(host)
	hc := &http.Client{Transport: tr}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	if _, err := hc.Do(req); err == nil {
		t.Fatal("blackholed request succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("blackholed request did not release on context expiry")
	}
}

func TestDiskTornWriteIsHalfThenError(t *testing.T) {
	d := NewDisk()
	f, err := d.OpenFile(t.TempDir()+"/x", 0x241 /* O_CREATE|O_EXCL|O_WRONLY */, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d.TearWriteAfter(1)
	if _, err := f.Write(make([]byte, 10)); err != nil {
		t.Fatalf("pre-tear write: %v", err)
	}
	n, err := f.Write(make([]byte, 10))
	if err == nil {
		t.Fatal("torn write reported success")
	}
	if n != 5 {
		t.Fatalf("torn write persisted %d bytes, want 5", n)
	}
	// Healed after the one-shot tear.
	if _, err := f.Write(make([]byte, 10)); err != nil {
		t.Fatalf("post-tear write: %v", err)
	}
}
