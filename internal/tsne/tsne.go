// Package tsne implements exact (O(n²)) t-SNE for the paper's embedding
// visualizations (Fig. 6 and Fig. 8), plus the quantitative cluster-quality
// metrics (silhouette score, cluster purity) that turn "the embeddings form
// clusters" into a measurable statement for EXPERIMENTS.md.
package tsne

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// Options configures a t-SNE run.
type Options struct {
	// Dims is the output dimensionality (2 for plots).
	Dims int
	// Perplexity balances local/global structure; typical 5-50.
	Perplexity float64
	// Iterations of gradient descent.
	Iterations int
	// LearningRate for the Kullback-Leibler gradient.
	LearningRate float64
	// Seed for the initial layout.
	Seed int64
}

// DefaultOptions returns the common defaults.
func DefaultOptions() Options {
	return Options{Dims: 2, Perplexity: 20, Iterations: 300, LearningRate: 100, Seed: 1}
}

// Embed runs exact t-SNE on the given points.
func Embed(points [][]float64, opts Options) ([][]float64, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("tsne: no points")
	}
	if opts.Dims <= 0 {
		return nil, fmt.Errorf("tsne: dims %d must be positive", opts.Dims)
	}
	if opts.Perplexity <= 0 || float64(n-1) < opts.Perplexity {
		return nil, fmt.Errorf("tsne: perplexity %v invalid for %d points", opts.Perplexity, n)
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 300
	}
	if opts.LearningRate <= 0 {
		opts.LearningRate = 100
	}

	// Pairwise squared distances in input space.
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
		for j := range d2[i] {
			if i != j {
				d2[i][j] = linalg.SquaredDistance(points[i], points[j])
			}
		}
	}

	// Per-point bandwidths by binary search to hit the target perplexity.
	p := make([][]float64, n)
	logPerp := math.Log(opts.Perplexity)
	for i := 0; i < n; i++ {
		p[i] = make([]float64, n)
		lo, hi := 1e-20, 1e20
		beta := 1.0
		for iter := 0; iter < 64; iter++ {
			var sum, entSum float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				pij := math.Exp(-d2[i][j] * beta)
				p[i][j] = pij
				sum += pij
				entSum += beta * d2[i][j] * pij
			}
			if sum < 1e-300 {
				sum = 1e-300
			}
			entropy := math.Log(sum) + entSum/sum
			if math.Abs(entropy-logPerp) < 1e-5 {
				break
			}
			if entropy > logPerp {
				lo = beta
				if hi >= 1e20 {
					beta *= 2
				} else {
					beta = (beta + hi) / 2
				}
			} else {
				hi = beta
				beta = (beta + lo) / 2
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			sum += p[i][j]
		}
		if sum < 1e-300 {
			sum = 1e-300
		}
		for j := 0; j < n; j++ {
			p[i][j] /= sum
		}
	}
	// Symmetrize and apply early exaggeration.
	const exaggeration = 4.0
	pSym := make([][]float64, n)
	for i := range pSym {
		pSym[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := (p[i][j] + p[j][i]) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			pSym[i][j] = v * exaggeration
		}
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	y := make([][]float64, n)
	vel := make([][]float64, n)
	gains := make([][]float64, n)
	for i := range y {
		y[i] = make([]float64, opts.Dims)
		vel[i] = make([]float64, opts.Dims)
		gains[i] = make([]float64, opts.Dims)
		for d := range y[i] {
			y[i][d] = rng.NormFloat64() * 1e-2
			gains[i][d] = 1
		}
	}

	q := make([][]float64, n)
	allGrad := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
		allGrad[i] = make([]float64, opts.Dims)
	}
	for iter := 0; iter < opts.Iterations; iter++ {
		if iter == opts.Iterations/4 {
			// End early exaggeration.
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					pSym[i][j] /= exaggeration
				}
			}
		}
		momentum := 0.5
		if iter >= 50 {
			momentum = 0.8
		}
		// Student-t affinities in output space.
		var qSum float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := 1 / (1 + linalg.SquaredDistance(y[i], y[j]))
				q[i][j] = v
				q[j][i] = v
				qSum += 2 * v
			}
		}
		if qSum < 1e-300 {
			qSum = 1e-300
		}
		// Compute all gradients against the same snapshot of y, then
		// update simultaneously (matching the reference implementation).
		for i := 0; i < n; i++ {
			grad := allGrad[i]
			for d := range grad {
				grad[d] = 0
			}
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				qij := q[i][j] / qSum
				if qij < 1e-12 {
					qij = 1e-12
				}
				mult := 4 * (pSym[i][j] - qij) * q[i][j]
				for d := 0; d < opts.Dims; d++ {
					grad[d] += mult * (y[i][d] - y[j][d])
				}
			}
		}
		var center float64
		for i := 0; i < n; i++ {
			for d := 0; d < opts.Dims; d++ {
				// Adaptive per-coordinate gains (van der Maaten's
				// reference scheme) keep large learning rates stable.
				if (allGrad[i][d] > 0) != (vel[i][d] > 0) {
					gains[i][d] += 0.2
				} else {
					gains[i][d] *= 0.8
					if gains[i][d] < 0.01 {
						gains[i][d] = 0.01
					}
				}
				vel[i][d] = momentum*vel[i][d] - opts.LearningRate*gains[i][d]*allGrad[i][d]
				y[i][d] += vel[i][d]
			}
		}
		// Re-center the layout each iteration.
		for d := 0; d < opts.Dims; d++ {
			center = 0
			for i := 0; i < n; i++ {
				center += y[i][d]
			}
			center /= float64(n)
			for i := 0; i < n; i++ {
				y[i][d] -= center
			}
		}
	}
	return y, nil
}

// Silhouette returns the mean silhouette coefficient of points under the
// given integer labels: (b−a)/max(a,b) per point, where a is the mean
// intra-cluster distance and b the smallest mean distance to another
// cluster. Values near 1 indicate tight, well-separated clusters. Points in
// singleton clusters score 0 by convention.
func Silhouette(points [][]float64, labels []int) (float64, error) {
	n := len(points)
	if n != len(labels) {
		return 0, fmt.Errorf("tsne: %d points vs %d labels", n, len(labels))
	}
	if n == 0 {
		return 0, fmt.Errorf("tsne: no points")
	}
	byLabel := map[int][]int{}
	for i, l := range labels {
		byLabel[l] = append(byLabel[l], i)
	}
	if len(byLabel) < 2 {
		return 0, fmt.Errorf("tsne: silhouette needs at least 2 clusters")
	}
	var total float64
	for i := 0; i < n; i++ {
		own := byLabel[labels[i]]
		if len(own) <= 1 {
			continue // silhouette 0
		}
		var a float64
		for _, j := range own {
			if j != i {
				a += linalg.Distance(points[i], points[j])
			}
		}
		a /= float64(len(own) - 1)
		b := math.Inf(1)
		for l, members := range byLabel {
			if l == labels[i] {
				continue
			}
			var m float64
			for _, j := range members {
				m += linalg.Distance(points[i], points[j])
			}
			m /= float64(len(members))
			if m < b {
				b = m
			}
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n), nil
}

// Purity measures agreement between predicted cluster assignments and true
// labels: each cluster votes for its majority true label, and purity is the
// fraction of points covered by those votes.
func Purity(assignments, truth []int) (float64, error) {
	if len(assignments) != len(truth) {
		return 0, fmt.Errorf("tsne: %d assignments vs %d truths", len(assignments), len(truth))
	}
	if len(assignments) == 0 {
		return 0, fmt.Errorf("tsne: no points")
	}
	votes := map[int]map[int]int{}
	for i, a := range assignments {
		if votes[a] == nil {
			votes[a] = map[int]int{}
		}
		votes[a][truth[i]]++
	}
	correct := 0
	for _, counts := range votes {
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assignments)), nil
}
