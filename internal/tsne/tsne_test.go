package tsne

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// blobs builds k separated clusters of m points in dim dimensions.
func blobs(k, m, dim int, spread float64, seed int64) (points [][]float64, labels []int) {
	rng := rand.New(rand.NewSource(seed))
	for b := 0; b < k; b++ {
		center := make([]float64, dim)
		center[b%dim] = float64(b+1) * 10
		for p := 0; p < m; p++ {
			pt := make([]float64, dim)
			for d := range pt {
				pt[d] = center[d] + rng.NormFloat64()*spread
			}
			points = append(points, pt)
			labels = append(labels, b)
		}
	}
	return points, labels
}

func TestEmbedPreservesClusters(t *testing.T) {
	points, labels := blobs(3, 25, 5, 0.5, 1)
	opts := DefaultOptions()
	opts.Perplexity = 10
	opts.Iterations = 250
	y, err := Embed(points, opts)
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	if len(y) != len(points) || len(y[0]) != 2 {
		t.Fatalf("output shape %dx%d, want %dx2", len(y), len(y[0]), len(points))
	}
	sil, err := Silhouette(y, labels)
	if err != nil {
		t.Fatalf("Silhouette: %v", err)
	}
	if sil < 0.5 {
		t.Errorf("t-SNE silhouette %v, want >= 0.5 on well-separated blobs", sil)
	}
}

func TestEmbedErrors(t *testing.T) {
	if _, err := Embed(nil, DefaultOptions()); err == nil {
		t.Error("empty input should error")
	}
	pts, _ := blobs(1, 5, 2, 1, 2)
	opts := DefaultOptions()
	opts.Perplexity = 100 // more than n-1
	if _, err := Embed(pts, opts); err == nil {
		t.Error("oversized perplexity should error")
	}
	opts = DefaultOptions()
	opts.Dims = 0
	if _, err := Embed(pts, opts); err == nil {
		t.Error("zero dims should error")
	}
}

func TestSilhouette(t *testing.T) {
	// Two tight, distant clusters: silhouette near 1.
	points := [][]float64{{0, 0}, {0.1, 0}, {10, 0}, {10.1, 0}}
	labels := []int{0, 0, 1, 1}
	sil, err := Silhouette(points, labels)
	if err != nil {
		t.Fatalf("Silhouette: %v", err)
	}
	if sil < 0.9 {
		t.Errorf("silhouette = %v, want >= 0.9", sil)
	}
	// Scrambled labels: much worse.
	bad, err := Silhouette(points, []int{0, 1, 0, 1})
	if err != nil {
		t.Fatalf("Silhouette: %v", err)
	}
	if bad >= sil {
		t.Errorf("scrambled silhouette %v should be below clean %v", bad, sil)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	if _, err := Silhouette(nil, nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := Silhouette([][]float64{{0}}, []int{0, 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Silhouette([][]float64{{0}, {1}}, []int{0, 0}); err == nil {
		t.Error("single cluster should error")
	}
}

func TestPurity(t *testing.T) {
	// Perfect assignment (different ids, same partition).
	p, err := Purity([]int{5, 5, 9, 9}, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatalf("Purity: %v", err)
	}
	if p != 1 {
		t.Errorf("purity = %v, want 1", p)
	}
	// One impure member.
	p, err = Purity([]int{1, 1, 1, 2}, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatalf("Purity: %v", err)
	}
	if p != 0.75 {
		t.Errorf("purity = %v, want 0.75", p)
	}
	if _, err := Purity([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Purity(nil, nil); err == nil {
		t.Error("empty should error")
	}
}

func TestEmbedDeterministic(t *testing.T) {
	points, _ := blobs(2, 10, 3, 0.5, 3)
	opts := DefaultOptions()
	opts.Perplexity = 5
	opts.Iterations = 50
	a, err := Embed(points, opts)
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	b, err := Embed(points, opts)
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	for i := range a {
		if linalg.Distance(a[i], b[i]) != 0 {
			t.Fatal("t-SNE not deterministic for fixed seed")
		}
	}
}
