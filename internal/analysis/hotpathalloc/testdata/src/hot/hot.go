// Package hot exercises hotpathalloc: composite literals, append growth,
// unguarded make, string conversions, and interface boxing inside
// grafics:hotpath functions — plus the cold-block, capacity-guard,
// zero-size, and allocok exemptions that keep real pooled code clean.
package hot

import "fmt"

type vec struct{ xs []float64 }

// grafics:hotpath
func BadLiteral() vec {
	return vec{} // want `composite literal allocates`
}

// grafics:hotpath
func BadAppend(xs []int, v int) []int {
	xs = append(xs, v) // want `append may grow its backing array`
	return xs
}

// grafics:hotpath
func BadMake(n int) []int {
	buf := make([]int, n) // want `make allocates`
	return buf
}

// grafics:hotpath
func GoodCapacityGuard(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return buf[:n]
}

// grafics:hotpath
func BadStringConversion(b []byte) string {
	return string(b) // want `conversion allocates`
}

// grafics:hotpath
func BadByteConversion(s string) []byte {
	return []byte(s) // want `conversion allocates`
}

func sink(v any) { _ = v }

// grafics:hotpath
func BadBoxing(n int) {
	sink(n) // want `boxes int into an interface parameter`
}

// grafics:hotpath
func GoodPointerShaped(p *vec) {
	sink(p)
}

// grafics:hotpath
func GoodZeroSize(m map[string]struct{}, k string) {
	m[k] = struct{}{}
}

// grafics:hotpath
func GoodColdErrorPath(n int) error {
	if n < 0 {
		return fmt.Errorf("negative length %d", n)
	}
	return nil
}

// grafics:hotpath
func GoodSuppressed() *vec {
	// grafics:allocok nil-workspace fallback, once per caller
	return &vec{}
}

// Unannotated functions are never checked, whatever they allocate.
func NotHot() []int {
	return append(make([]int, 0), 1, 2, 3)
}
