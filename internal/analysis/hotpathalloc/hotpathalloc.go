// Package hotpathalloc enforces the grafics:hotpath annotation: an
// annotated function must not allocate on its steady-state path. The
// analyzer flags composite literals, make and new, every append (growth
// cannot be ruled out syntactically), string<->[]byte/[]rune conversions,
// and interface boxing (a non-pointer-shaped concrete argument passed to
// an interface parameter).
//
// Two structural exemptions keep the rule usable on real pooled code:
//
//   - Cold blocks: a block whose final statement returns a non-nil error
//     or panics is an error exit, not the steady state; nothing inside it
//     is checked. This is how validation and corruption paths coexist
//     with a zero-alloc happy path.
//   - Capacity guards: make/new inside an if whose condition mentions
//     cap() or len() is the pool warm-up idiom ("grow only when the
//     reusable buffer is too small") and is amortized-zero, so it is
//     exempt.
//
// Zero-size composite literals (struct{}{} set membership) do not
// allocate and are ignored. Everything else needs a
// `// grafics:allocok reason` comment on the line or the line above.
package hotpathalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "checks that grafics:hotpath functions do not allocate outside cold blocks and capacity guards",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fa := pass.Ann.FuncByDecl(fn); fa == nil || !fa.Hotpath {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc walks one hot-path body, skipping cold blocks and tracking
// capacity-guard scopes.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	cold := make(map[ast.Node]bool)
	capGuard := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			if isCold(pass, n.List) {
				cold[n] = true
			}
		case *ast.CaseClause:
			if isCold(pass, n.Body) {
				cold[n] = true
			}
		case *ast.CommClause:
			if isCold(pass, n.Body) {
				cold[n] = true
			}
		case *ast.IfStmt:
			if mentionsCapLen(pass, n.Cond) {
				capGuard[n.Body] = true
			}
		}
		return true
	})

	var stack []ast.Node
	capDepth := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if capGuard[top] {
				capDepth--
			}
			return true
		}
		if cold[n] {
			return false
		}
		stack = append(stack, n)
		if capGuard[n] {
			capDepth++
		}
		checkNode(pass, n, capDepth > 0)
		return true
	})
}

// isCold reports whether a statement list is an error exit: its final
// statement returns a non-nil error or panics.
func isCold(pass *analysis.Pass, list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		if len(last.Results) == 0 {
			return false
		}
		res := last.Results[len(last.Results)-1]
		if id, ok := res.(*ast.Ident); ok && id.Name == "nil" {
			return false
		}
		t := pass.TypesInfo.Types[res].Type
		return t != nil && isErrorType(t)
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// mentionsCapLen reports whether cond calls the cap or len builtin — the
// signature of a buffer-reuse capacity guard.
func mentionsCapLen(pass *analysis.Pass, cond ast.Expr) bool {
	if cond == nil {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkNode flags one allocating expression, honoring grafics:allocok.
func checkNode(pass *analysis.Pass, n ast.Node, capGuarded bool) {
	switch n := n.(type) {
	case *ast.CompositeLit:
		t := pass.TypesInfo.Types[n].Type
		if zeroSize(t) || pass.Ann.Suppressed(n.Pos(), "allocok") {
			return
		}
		pass.Reportf(n.Pos(), "composite literal allocates in grafics:hotpath function; hoist into a pooled workspace or annotate grafics:allocok")
	case *ast.CallExpr:
		checkCall(pass, n, capGuarded)
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, capGuarded bool) {
	// Conversion: string <-> []byte/[]rune copies its operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := pass.TypesInfo.Types[call.Args[0]].Type
		if allocatingConversion(to, from) && !pass.Ann.Suppressed(call.Pos(), "allocok") {
			pass.Reportf(call.Pos(), "%s conversion allocates in grafics:hotpath function; keep one representation or annotate grafics:allocok", types.TypeString(to, nil))
		}
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				if !capGuarded && !pass.Ann.Suppressed(call.Pos(), "allocok") {
					pass.Reportf(call.Pos(), "%s allocates in grafics:hotpath function; guard with a cap()/len() capacity check or annotate grafics:allocok", id.Name)
				}
			case "append":
				if !pass.Ann.Suppressed(call.Pos(), "allocok") {
					pass.Reportf(call.Pos(), "append may grow its backing array in grafics:hotpath function; pre-size the buffer or annotate grafics:allocok")
				}
			}
			return
		}
	}
	checkBoxing(pass, call)
}

// checkBoxing flags concrete, non-pointer-shaped arguments passed to
// interface parameters: the value escapes to the heap to fit the box.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypesInfo.Types[arg].Type
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if _, already := at.Underlying().(*types.Interface); already {
			continue
		}
		if pointerShaped(at) || pass.Ann.Suppressed(arg.Pos(), "allocok") {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into an interface parameter in grafics:hotpath function (heap escape); pass a pointer-shaped value or annotate grafics:allocok", types.TypeString(at, nil))
	}
}

// allocatingConversion reports whether converting from -> to copies the
// operand: string <-> []byte and string <-> []rune both do.
func allocatingConversion(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Uint8, types.Int32: // byte and rune
		return true
	}
	return false
}

// zeroSize reports whether a composite literal of type t occupies no
// storage (struct{}{}, [0]T{}) and therefore cannot allocate.
func zeroSize(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		return u.NumFields() == 0
	case *types.Array:
		return u.Len() == 0
	}
	return false
}

// pointerShaped reports whether values of t fit an interface word
// without boxing.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
