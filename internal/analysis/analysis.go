// Package analysis is a self-contained static-analysis framework for the
// GRAFICS codebase, mirroring the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) on top of the standard library's go/ast
// and go/types only. The repository's toolchain ships without x/tools, so
// the framework carries its own package loader (load.go), which
// type-checks target packages from source against gc export data produced
// by `go list -export` — full types.Info resolution, no network, no
// third-party modules.
//
// The concrete invariants the suite enforces live in the analyzer
// subpackages (lockcheck, ctxcheck, hotpathalloc, walorder); the
// machine-readable annotation grammar they consume (grafics:guardedby,
// grafics:locked, grafics:rlocked, grafics:hotpath, grafics:allocok,
// grafics:ctxok, grafics:lockok) is parsed once per package by
// annotations.go and shared across analyzers through the Pass.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named static check. Run receives a fully loaded and
// type-checked Pass and reports findings through pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and cache keys.
	Name string
	// Doc is the one-paragraph description shown by graficslint -help.
	Doc string
	// Run executes the check over one package.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	// Pos is the finding's source position, resolved against the pass fset.
	Pos token.Position `json:"pos"`
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// Message describes the violation and, where applicable, the
	// annotation that suppresses it.
	Message string `json:"message"`
}

// String formats the diagnostic the way compilers do, so editors and CI
// log scrapers pick the position up.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset resolves token.Pos values for every file of the package.
	Fset *token.FileSet
	// Files are the package's parsed source files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds identifier resolution and expression types.
	TypesInfo *types.Info
	// Ann is the package's parsed grafics: annotation index.
	Ann *Annotations
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes each analyzer over each package and returns every finding,
// sorted by position. Analyzer errors (not findings) abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackage(pkg, analyzers)
		if err != nil {
			return diags, err
		}
		diags = append(diags, ds...)
	}
	Sort(diags)
	return diags, nil
}

// RunPackage executes each analyzer over a single loaded package.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ann := ParseAnnotations(pkg.Fset, pkg.Files, pkg.TypesInfo)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Ann:       ann,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	Sort(diags)
	return diags, nil
}

// Sort orders diagnostics by file, line, column, then analyzer name, so
// output and cached results are deterministic.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
