package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the package's import path (or the fixture name under
	// analysistest).
	Path string
	// Dir is the package's source directory.
	Dir string
	// Filenames are the parsed files, absolute, in parse order.
	Filenames []string
	// Fset resolves positions for Files.
	Fset *token.FileSet
	// Files are the parsed sources, comments included. Test files are
	// excluded: the analyzers machine-check library invariants, and the
	// annotation grammar allowlists tests by construction.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo carries identifier resolution for the analyzers.
	TypesInfo *types.Info
	// TypeErrors collects type-checker soft failures. Analyzers run
	// regardless; the driver surfaces them so a broken tree fails loudly.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v: %s", strings.Join(args[:2], " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listPkg
	for {
		var p listPkg
		if derr := dec.Decode(&p); derr != nil {
			if derr == io.EOF {
				break
			}
			return nil, fmt.Errorf("analysis: decode go list output: %w", derr)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// listFields is the field projection requested from go list; asking for a
// projection keeps the JSON small and the schema stable.
const listFields = "-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error"

// Load lists patterns with the go tool, parses every matched non-test
// source file, and type-checks each target package from source against
// the gc export data of its dependencies (built on demand into the build
// cache by `go list -export`). It needs no network and no modules beyond
// the repository itself.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", listFields}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []listPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil && len(p.GoFiles) == 0 {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		var files []string
		for _, g := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, g))
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, files, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// exportImporter returns a gc-export-data importer resolving import paths
// through the exports map.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// check parses files and type-checks them as one package. Type errors are
// collected, not fatal: the analyzers still run over whatever resolved,
// and the caller decides whether soft failures abort.
func check(fset *token.FileSet, imp types.Importer, path, dir string, files []string, src map[string][]byte) (*Package, error) {
	pkg := &Package{Path: path, Dir: dir, Fset: fset}
	for _, name := range files {
		var content any
		if src != nil {
			content = src[name]
		}
		f, err := parser.ParseFile(fset, name, content, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, name)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, fset, pkg.Files, info) // errors collected above
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg, nil
}

// LoadFixture parses and type-checks a single directory of fixture
// sources (analysistest). The fixture may import standard-library
// packages and nothing else; export data for those imports is resolved by
// listing them from moduleDir (any directory inside a module with a Go
// toolchain, typically the repository root).
func LoadFixture(moduleDir, fixtureDir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture dir: %w", err)
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		files = append(files, filepath.Join(fixtureDir, e.Name()))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: fixture dir %s has no .go files", fixtureDir)
	}
	sort.Strings(files)

	// Discover the fixture's imports with a comment-free parse pass, then
	// materialize export data for them (and their dependencies).
	fset := token.NewFileSet()
	importSet := make(map[string]bool)
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse fixture %s: %w", name, err)
		}
		for _, im := range f.Imports {
			importSet[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		args := append([]string{"list", "-e", "-export", "-deps", listFields}, paths...)
		listed, err := goList(moduleDir, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset = token.NewFileSet()
	return check(fset, exportImporter(fset, exports), asPath, fixtureDir, files, nil)
}
