package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// cacheVersion invalidates every cached entry when the on-disk schema or
// analyzer semantics change. Bump it whenever an analyzer's rules move.
const cacheVersion = "graficslint-cache-1"

// Cache memoizes per-package diagnostics keyed by the package's source
// bytes and the analyzer set, so unchanged packages are not re-analyzed
// across CI runs.
type Cache struct {
	dir string
}

// OpenCache returns a diagnostics cache rooted at dir; when dir is empty
// it defaults to <user cache dir>/graficslint. A nil *Cache is a valid
// no-op cache, so callers may ignore the error and proceed uncached.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		base, err := os.UserCacheDir()
		if err != nil {
			return nil, fmt.Errorf("analysis: cache dir: %w", err)
		}
		dir = filepath.Join(base, "graficslint")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("analysis: cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// cacheEntry is the stored value: the diagnostics one package produced.
type cacheEntry struct {
	Version     string       `json:"version"`
	Package     string       `json:"package"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Key derives the cache key for one package under one analyzer set. It
// hashes the cache schema version, the toolchain version, the analyzer
// names and docs (so editing a rule's semantics via its Doc string at
// least suggests a bump), the package path, and every source file's name
// and content. Missing files make the package uncacheable ("", false).
func (c *Cache) Key(pkg *Package, analyzers []*Analyzer) (string, bool) {
	if c == nil {
		return "", false
	}
	h := sha256.New()
	fmt.Fprintln(h, cacheVersion)
	fmt.Fprintln(h, runtime.Version(), goToolVersion())
	for _, a := range analyzers {
		fmt.Fprintln(h, a.Name, a.Doc)
	}
	fmt.Fprintln(h, pkg.Path)
	for _, name := range pkg.Filenames {
		data, err := os.ReadFile(name)
		if err != nil {
			return "", false
		}
		fmt.Fprintln(h, name, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// Get returns the cached diagnostics for key, or ok=false on miss or any
// decode problem (a corrupt entry is treated as a miss).
func (c *Cache) Get(key string) ([]Diagnostic, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Version != cacheVersion {
		return nil, false
	}
	return e.Diagnostics, true
}

// Put stores the diagnostics for key. Write errors are returned so the
// driver can warn, but callers may ignore them: the cache is advisory.
func (c *Cache) Put(key, pkgPath string, diags []Diagnostic) error {
	if c == nil || key == "" {
		return nil
	}
	e := cacheEntry{Version: cacheVersion, Package: pkgPath, Diagnostics: diags}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp := c.path(key) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.path(key))
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2]+"-"+key[2:]+".json")
}

// goToolVersion returns `go version` output so cache keys rotate with the
// toolchain even when the linter binary was built by an older runtime.
func goToolVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return "unknown"
	}
	return string(out)
}
