// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixtures
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives under <analyzer>/testdata/src/<name>/ (testdata is
// invisible to the go tool, so fixtures may contain deliberate
// violations without breaking the build). Expectations are `want`
// comments on the line the diagnostic should land on:
//
//	s.count++ // want `requires holding`
//	v := s.m  // want "guardedby"
//
// The payload is a regular expression matched against the diagnostic
// message. Matching is exact per (file, line): every diagnostic must be
// matched by a want on its line, and every want must be matched by a
// diagnostic — surplus in either direction fails the test.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts the expectation pattern from a comment: a `want`
// keyword followed by one double-quoted or backquoted regexp.
var wantRe = regexp.MustCompile("//\\s*want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// expectation is one want comment.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads each named fixture from dir/testdata/src/<name>, runs the
// analyzer, and reports mismatches through t. dir is the analyzer's
// package directory (usually "." from its test). moduleDir anchors
// `go list` for stdlib export data; tests pass the repository root.
func Run(t *testing.T, moduleDir, dir string, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	for _, name := range fixtures {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Helper()
			fixtureDir := filepath.Join(dir, "testdata", "src", name)
			pkg, err := analysis.LoadFixture(moduleDir, fixtureDir, name)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			for _, terr := range pkg.TypeErrors {
				t.Errorf("fixture type error: %v", terr)
			}
			diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("run %s: %v", a.Name, err)
			}
			check(t, pkg, diags)
		})
	}
}

// check matches diagnostics against want comments bidirectionally.
func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if w := matchWant(wants, d); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.pattern)
		}
	}
}

// matchWant finds an unmatched expectation on the diagnostic's line whose
// pattern matches its message.
func matchWant(wants []*expectation, d analysis.Diagnostic) *expectation {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line || filepath.Base(w.file) != filepath.Base(d.Pos.Filename) {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

// collectWants parses every want comment in the fixture.
func collectWants(pkg *analysis.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "want ") && strings.Contains(c.Text, "//") {
						// Guard against silently ignored malformed wants.
						if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ") {
							return nil, fmt.Errorf("%s: malformed want comment: %s", pkg.Fset.Position(c.Pos()), c.Text)
						}
					}
					continue
				}
				pat := m[1]
				if m[2] != "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return wants, nil
}
