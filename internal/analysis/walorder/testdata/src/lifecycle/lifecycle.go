// Package lifecycle exercises walorder: discarded journal errors,
// mutations on the error branch, mutations inside the unresolved-error
// window, and the idioms that are always fine (direct return, checked
// error, per-record error slices). The fixture is named "lifecycle" so
// the analyzer's package filter applies, as it does to the real
// internal/lifecycle.
package lifecycle

type rec struct{ mac string }

// Log stands in for wal.Log: Append journals a record durably.
type Log struct{}

func (l *Log) Append(r rec) error {
	_ = r
	return nil
}

type portfolio struct{}

func (p *portfolio) AbsorbBuilding(id string) error { return nil }
func (p *portfolio) RemoveMAC(mac string) error     { return nil }

type Manager struct {
	log *Log
	p   *portfolio
}

func (m *Manager) journal(r rec) error {
	return m.log.Append(r)
}

func (m *Manager) BadDiscard(r rec) error {
	m.log.Append(r) // want `WAL append error discarded`
	return m.p.AbsorbBuilding(r.mac)
}

func (m *Manager) BadBlankAssign(r rec) error {
	_ = m.log.Append(r) // want `assigned to _`
	return m.p.AbsorbBuilding(r.mac)
}

func (m *Manager) BadMutateBeforeCheck(r rec) error {
	err := m.log.Append(r)
	if e2 := m.p.AbsorbBuilding(r.mac); e2 != nil { // want `before the journal append error is checked`
		return e2
	}
	return err
}

func (m *Manager) BadMutateOnErrBranch(r rec) error {
	err := m.log.Append(r)
	if err != nil {
		_ = m.p.RemoveMAC(r.mac) // want `error branch of journal append`
		return err
	}
	return m.p.AbsorbBuilding(r.mac)
}

func (m *Manager) GoodDirectReturn(r rec) error {
	return m.log.Append(r)
}

func (m *Manager) GoodChecked(r rec) error {
	if err := m.log.Append(r); err != nil {
		return err
	}
	return m.p.AbsorbBuilding(r.mac)
}

func (m *Manager) GoodPerRecordErrs(recs []rec) error {
	errs := make([]error, len(recs))
	for i, r := range recs {
		errs[i] = m.journal(r)
	}
	for i, r := range recs {
		if errs[i] != nil {
			continue
		}
		_ = m.p.AbsorbBuilding(r.mac)
	}
	return nil
}

func (m *Manager) GoodSuppressedReplay(r rec) error {
	err := m.log.Append(r)
	// grafics:walok replay reapplies state; journal health handled by caller
	_ = m.p.AbsorbBuilding(r.mac)
	return err
}
