// Package walorder enforces journal-before-ack inside internal/lifecycle:
// a mutation of the wrapped portfolio (AbsorbBuilding, RemoveMAC,
// ReplaceSystem, AddTraining, or a Classify call carrying WithAbsorb)
// must not be reachable while a WAL append error is unresolved. Three
// rules, checked statement-by-statement per function:
//
//   - Discarded journal error: calling Log.Append or a journal method as
//     a bare statement, or assigning its error to _, silently drops the
//     durability signal.
//   - Mutation on the error branch: inside the `err != nil` arm of a
//     pending journal error (or the else arm of `err == nil`), mutating
//     portfolio state means acking work the journal rejected.
//   - Mutation before the check: between the statement that captures the
//     journal error and the first statement that reads that error
//     expression, any portfolio mutation happens while durability is
//     unknown.
//
// The error expression is tracked textually (types.ExprString of the
// assignment target), so `errs[i] = m.journal(...)` followed by a read of
// errs[i] resolves cleanly. Nested blocks are analyzed with a copy of the
// pending set; function literals start fresh (they run on their own
// schedule). `return m.log.Append(rec)` propagates the error directly and
// is always fine.
package walorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the walorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "walorder",
	Doc:  "checks that lifecycle portfolio mutations are not reachable past an unresolved WAL append error",
	Run:  run,
}

// mutators are the portfolio state mutations journal-before-ack protects.
var mutators = map[string]bool{
	"AbsorbBuilding": true,
	"RemoveMAC":      true,
	"ReplaceSystem":  true,
	"AddTraining":    true,
}

func run(pass *analysis.Pass) error {
	if !applies(pass) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			analyzeStmts(pass, fn.Body.List, map[string]token.Pos{})
		}
	}
	return nil
}

// applies restricts the analyzer to the lifecycle package.
func applies(pass *analysis.Pass) bool {
	if pass.Pkg == nil {
		return false
	}
	path := pass.Pkg.Path()
	return pass.Pkg.Name() == "lifecycle" || strings.HasSuffix(path, "/lifecycle") || path == "lifecycle"
}

// pending maps the textual error expression of an unchecked journal
// append to the append's position.

// analyzeStmts walks one statement list in order, threading the pending
// set. Nested control flow recurses on a copy: resolution inside a branch
// does not leak out, which errs toward reporting.
func analyzeStmts(pass *analysis.Pass, stmts []ast.Stmt, pending map[string]token.Pos) {
	for _, stmt := range stmts {
		analyzeStmt(pass, stmt, pending)
	}
}

func analyzeStmt(pass *analysis.Pass, stmt ast.Stmt, pending map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			analyzeStmt(pass, s.Init, pending)
		}
		errKey, negated := errNilCond(s.Cond, pending)
		checkMutators(pass, exprStmtOnly(s.Cond), pending)
		if errKey != "" {
			delete(pending, errKey)
			if negated { // err != nil: Then is the error branch
				flagErrBranch(pass, s.Body, errKey)
				if s.Else != nil {
					analyzeStmt(pass, s.Else, copyPending(pending))
				}
			} else { // err == nil: Else is the error branch
				analyzeStmts(pass, s.Body.List, copyPending(pending))
				if els, ok := s.Else.(*ast.BlockStmt); ok {
					flagErrBranch(pass, els, errKey)
				} else if s.Else != nil {
					analyzeStmt(pass, s.Else, copyPending(pending))
				}
			}
			return
		}
		resolveReads(s.Cond, pending)
		analyzeStmts(pass, s.Body.List, copyPending(pending))
		if s.Else != nil {
			analyzeStmt(pass, s.Else, copyPending(pending))
		}
	case *ast.BlockStmt:
		analyzeStmts(pass, s.List, copyPending(pending))
	case *ast.ForStmt:
		if s.Init != nil {
			analyzeStmt(pass, s.Init, pending)
		}
		resolveReads(s.Cond, pending)
		analyzeStmts(pass, s.Body.List, copyPending(pending))
	case *ast.RangeStmt:
		resolveReads(s.X, pending)
		analyzeStmts(pass, s.Body.List, copyPending(pending))
	case *ast.SwitchStmt:
		if s.Init != nil {
			analyzeStmt(pass, s.Init, pending)
		}
		resolveReads(s.Tag, pending)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				analyzeStmts(pass, cc.Body, copyPending(pending))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				analyzeStmts(pass, cc.Body, copyPending(pending))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				analyzeStmts(pass, cc.Body, copyPending(pending))
			}
		}
	case *ast.AssignStmt:
		checkMutators(pass, s, pending)
		resolveReads(s, pending)
		recordJournal(pass, s, pending)
	case *ast.ExprStmt:
		checkMutators(pass, s, pending)
		resolveReads(s, pending)
		// A journal call whose error is never captured.
		if call := journalCall(pass, s.X); call != nil && !pass.Ann.Suppressed(call.Pos(), "walok") {
			pass.Reportf(call.Pos(), "WAL append error discarded; check the journal error before acknowledging the absorb")
		}
	default:
		checkMutators(pass, stmt, pending)
		resolveReads(stmt, pending)
		// Function literals run on their own schedule: analyze them fresh.
		ast.Inspect(stmt, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				analyzeStmts(pass, lit.Body.List, map[string]token.Pos{})
				return false
			}
			return true
		})
	}
}

// exprStmtOnly wraps an expression so checkMutators can scan it.
func exprStmtOnly(e ast.Expr) ast.Node {
	if e == nil {
		return nil
	}
	return e
}

func copyPending(pending map[string]token.Pos) map[string]token.Pos {
	cp := make(map[string]token.Pos, len(pending))
	for k, v := range pending {
		cp[k] = v
	}
	return cp
}

// recordJournal registers the error target of a journal assignment, or
// flags an assignment to the blank identifier.
func recordJournal(pass *analysis.Pass, s *ast.AssignStmt, pending map[string]token.Pos) {
	for i, rhs := range s.Rhs {
		call := journalCall(pass, rhs)
		if call == nil {
			continue
		}
		// The journal error is the matching (or last) assignment target.
		lhs := s.Lhs[len(s.Lhs)-1]
		if len(s.Rhs) == len(s.Lhs) {
			lhs = s.Lhs[i]
		}
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			if !pass.Ann.Suppressed(call.Pos(), "walok") {
				pass.Reportf(call.Pos(), "WAL append error assigned to _; check the journal error before acknowledging the absorb")
			}
			continue
		}
		pending[types.ExprString(lhs)] = call.Pos()
	}
}

// journalCall returns the call if expr is a WAL append: a method named
// Append on a receiver of type Log or from a wal package, or any method
// named journal.
func journalCall(pass *analysis.Pass, expr ast.Expr) *ast.CallExpr {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if sel.Sel.Name == "journal" {
		return call
	}
	if sel.Sel.Name != "Append" {
		return nil
	}
	t := pass.TypesInfo.Types[sel.X].Type
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	pkg := obj.Pkg()
	fromWAL := pkg != nil && (pkg.Name() == "wal" || strings.HasSuffix(pkg.Path(), "/wal"))
	if obj.Name() != "Log" && !fromWAL {
		return nil
	}
	return call
}

// errNilCond matches `<pending> != nil` / `<pending> == nil` conditions.
// negated is true for !=. Returns "" when cond is not an error check on a
// pending journal error.
func errNilCond(cond ast.Expr, pending map[string]token.Pos) (key string, negated bool) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return "", false
	}
	x, y := bin.X, bin.Y
	if id, ok := x.(*ast.Ident); ok && id.Name == "nil" {
		x, y = y, x
	}
	if id, ok := y.(*ast.Ident); !ok || id.Name != "nil" {
		return "", false
	}
	k := types.ExprString(x)
	if _, isPending := pending[k]; !isPending {
		return "", false
	}
	return k, bin.Op == token.NEQ
}

// flagErrBranch reports every portfolio mutation inside the error branch
// of a failed journal append.
func flagErrBranch(pass *analysis.Pass, body *ast.BlockStmt, errKey string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if call := mutatorCall(pass, n); call != nil && !pass.Ann.Suppressed(call.Pos(), "walok") {
			pass.Reportf(call.Pos(), "portfolio mutation on the error branch of journal append (%s failed); the WAL rejected this operation", errKey)
		}
		return true
	})
}

// checkMutators reports portfolio mutations reached while any journal
// error is still pending.
func checkMutators(pass *analysis.Pass, n ast.Node, pending map[string]token.Pos) {
	if n == nil || len(pending) == 0 {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if call := mutatorCall(pass, node); call != nil && !pass.Ann.Suppressed(call.Pos(), "walok") {
			pass.Reportf(call.Pos(), "portfolio mutation before the journal append error is checked (journal-before-ack)")
		}
		return true
	})
}

// mutatorCall returns the call if node mutates wrapped portfolio state:
// a named mutator method, or a Classify call carrying WithAbsorb.
func mutatorCall(pass *analysis.Pass, node ast.Node) *ast.CallExpr {
	call, ok := node.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	name := sel.Sel.Name
	if mutators[name] {
		return call
	}
	if strings.HasPrefix(name, "Classify") && mentionsWithAbsorb(call) {
		return call
	}
	return nil
}

// mentionsWithAbsorb reports whether any argument references the
// WithAbsorb option.
func mentionsWithAbsorb(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "WithAbsorb" {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// resolveReads deletes every pending journal error whose expression text
// appears anywhere in n: once the error is read, durability was checked
// (or at least observed) and the window closes.
func resolveReads(n ast.Node, pending map[string]token.Pos) {
	if n == nil || len(pending) == 0 {
		return
	}
	resolveReadsExpr := func(e ast.Expr) {
		s := types.ExprString(e)
		for k := range pending {
			if strings.Contains(s, k) {
				delete(pending, k)
			}
		}
	}
	switch s := n.(type) {
	case ast.Expr:
		resolveReadsExpr(s)
	case *ast.AssignStmt:
		// Reads happen on the RHS and in indexed LHS targets.
		for _, e := range s.Rhs {
			resolveReadsExpr(e)
		}
	default:
		ast.Inspect(n, func(node ast.Node) bool {
			if e, ok := node.(ast.Expr); ok {
				resolveReadsExpr(e)
				return false
			}
			return true
		})
	}
}
