// Package core exercises ctxcheck: synthesized background contexts,
// ctx-first parameter ordering, and the loop-without-ctx propagation gap.
// The fixture is named "core" so the analyzer's library-package filter
// applies, exactly as it does to the real internal/core.
package core

import "context"

func helper(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

func BadBackground() {
	ctx := context.Background() // want `synthesizes context.Background`
	_ = ctx
}

func BadTODO() error {
	return helper(context.TODO(), 1) // want `synthesizes context.TODO`
}

// DeprecatedWrapper mimics a compatibility shim kept for callers that
// predate context threading.
//
// grafics:ctxok deprecated wrapper, callers migrate to the ctx variant
func DeprecatedWrapper() {
	_ = context.Background()
}

func GoodLineSuppressed() {
	// grafics:ctxok process-lifetime root
	_ = context.Background()
}

func BadOrder(n int, ctx context.Context) { // want `context must be the first parameter`
	_ = n
	_ = ctx
}

func GoodOrder(ctx context.Context, n int) {
	_ = ctx
	_ = n
}

func BadLoopNoCtx(items []int) { // want `loops over data calling context-aware helper`
	for _, it := range items {
		_ = helper(nil, it)
	}
}

func GoodLoopWithCtx(ctx context.Context, items []int) {
	for _, it := range items {
		_ = helper(ctx, it)
	}
}

func GoodLoopNoCtxCallee(items []int) int {
	s := 0
	for _, it := range items {
		s += it
	}
	return s
}
