package ctxcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxcheck"
)

func TestCtxcheck(t *testing.T) {
	analysistest.Run(t, "../../..", ".", ctxcheck.Analyzer, "core")
}
