// Package ctxcheck enforces context propagation in the corpus-facing
// library packages (internal/embed, internal/cluster, internal/core,
// internal/portfolio, internal/lifecycle):
//
//  1. Library code must not synthesize context.Background() or
//     context.TODO() — the caller's context is the only legitimate
//     source of cancellation. Deliberate roots (process-lifetime
//     contexts, deprecated compatibility wrappers) are annotated with
//     `// grafics:ctxok reason`, either on the function's doc comment
//     (whole body) or on the offending line.
//  2. An exported function that does take a context.Context must take it
//     as the first parameter, per Go convention.
//  3. An exported function without a context parameter that loops over
//     data and calls a context-aware callee (one whose first parameter
//     is context.Context) is a propagation gap: it has work worth
//     cancelling and a callee that could be cancelled, but no context to
//     hand it.
//
// Tests, examples, and cmd/ binaries are outside the analyzer's scope:
// the loader only feeds it non-test files of the listed library
// packages, and binaries are legitimate context roots.
package ctxcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcheck",
	Doc:  "checks context propagation in corpus-facing library packages",
	Run:  run,
}

// libraryPackages are the corpus-facing packages the rules apply to,
// matched by the final import-path segment or the package name.
var libraryPackages = map[string]bool{
	"embed":     true,
	"cluster":   true,
	"core":      true,
	"portfolio": true,
	"lifecycle": true,
	"fleet":     true,
}

func run(pass *analysis.Pass) error {
	if !applies(pass) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fa := pass.Ann.FuncByDecl(fn)
			funcOK := fa != nil && fa.CtxOK
			if fn.Body != nil && !funcOK {
				checkBackground(pass, fn.Body)
			}
			if fn.Name.IsExported() {
				checkSignature(pass, fn, funcOK)
			}
		}
	}
	return nil
}

// applies reports whether the package is one of the corpus-facing
// library packages.
func applies(pass *analysis.Pass) bool {
	if pass.Pkg == nil {
		return false
	}
	path := pass.Pkg.Path()
	last := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		last = path[i+1:]
	}
	return libraryPackages[last] || libraryPackages[pass.Pkg.Name()]
}

// checkBackground flags context.Background() / context.TODO() calls.
func checkBackground(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		if !isContextPackage(pass, sel.X) {
			return true
		}
		if pass.Ann.Suppressed(call.Pos(), "ctxok") {
			return true
		}
		pass.Reportf(call.Pos(), "library code synthesizes context.%s(); thread the caller's ctx or annotate grafics:ctxok with a reason", sel.Sel.Name)
		return true
	})
}

// checkSignature enforces ctx-first ordering and flags the
// loop-over-data-without-ctx propagation gap.
func checkSignature(pass *analysis.Pass, fn *ast.FuncDecl, funcOK bool) {
	params := fn.Type.Params
	ctxIndex := -1
	if params != nil {
		i := 0
		for _, field := range params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			if isContextType(pass.TypesInfo.Types[field.Type].Type) && ctxIndex < 0 {
				ctxIndex = i
			}
			i += n
		}
	}
	if ctxIndex > 0 {
		pass.Reportf(fn.Name.Pos(), "exported %s takes context.Context as parameter %d; context must be the first parameter", fn.Name.Name, ctxIndex+1)
		return
	}
	if ctxIndex == 0 || funcOK || fn.Body == nil {
		return
	}
	// No ctx parameter: flag loops that invoke a context-aware callee.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			loopBody = l.Body
		case *ast.RangeStmt:
			loopBody = l.Body
		default:
			return true
		}
		if callee := contextAwareCallee(pass, loopBody); callee != "" {
			if !pass.Ann.Suppressed(fn.Name.Pos(), "ctxok") {
				pass.Reportf(fn.Name.Pos(), "exported %s loops over data calling context-aware %s but takes no context.Context; add a ctx parameter or annotate grafics:ctxok", fn.Name.Name, callee)
			}
			return false
		}
		return true
	})
}

// contextAwareCallee returns the name of the first function called inside
// body whose first parameter is a context.Context, or "".
func contextAwareCallee(pass *analysis.Pass, body *ast.BlockStmt) string {
	var found string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var obj types.Object
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			obj = pass.TypesInfo.Uses[fun]
		case *ast.SelectorExpr:
			obj = pass.TypesInfo.Uses[fun.Sel]
		}
		if obj == nil {
			return true
		}
		sig, ok := obj.Type().(*types.Signature)
		if !ok || sig.Params().Len() == 0 {
			return true
		}
		if isContextType(sig.Params().At(0).Type()) {
			found = obj.Name()
			return false
		}
		return true
	})
	return found
}

// isContextPackage reports whether expr names the context package.
func isContextPackage(pass *analysis.Pass, expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "context"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
