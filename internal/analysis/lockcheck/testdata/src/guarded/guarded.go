// Package guarded exercises lockcheck: guarded reads and writes inside
// and outside critical sections, shared-versus-exclusive holds, annotated
// callees, critical-section leaks, and goroutine scoping.
package guarded

import "sync"

type counter struct {
	mu sync.RWMutex
	// grafics:guardedby mu
	n int
	// grafics:guardedby mu
	items map[string]int
}

func (c *counter) BadRead() int {
	return c.n // want `read of c.n requires holding c.mu`
}

func (c *counter) BadWrite() {
	c.n++ // want `write to c.n requires holding c.mu`
}

func (c *counter) GoodWrite() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) GoodRead() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

func (c *counter) BadRLockWrite() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.n = 4 // want `under shared c.mu; exclusive Lock required`
}

// grafics:locked mu
func (c *counter) bumpLocked() { c.n++ }

// grafics:rlocked mu
func (c *counter) totalRLocked() int { return c.n }

func (c *counter) BadCallLockedUnheld() {
	c.bumpLocked() // want `call to bumpLocked requires holding c.mu`
}

func (c *counter) GoodCallLockedHeld() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked()
}

func (c *counter) BadCallLockedShared() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.bumpLocked() // want `requires exclusive c.mu but only a shared hold`
	return c.totalRLocked()
}

func (c *counter) BadLeakMap() map[string]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.items // want `leaks it out of the c.mu critical section`
}

func (c *counter) GoodCopyMap() map[string]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int, len(c.items))
	for k, v := range c.items {
		out[k] = v
	}
	return out
}

func (c *counter) BadDeleteUnheld(k string) {
	delete(c.items, k) // want `write to c.items requires holding c.mu`
}

func (c *counter) BadGoroutineDoesNotInherit() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `write to c.n requires holding c.mu`
	}()
}

func (c *counter) GoodClosureInherits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := func() int { return c.n }
	return f()
}

func (c *counter) GoodSuppressed() int {
	// grafics:lockok racy snapshot is advisory by design
	return c.n
}
