// Package lockcheck enforces the grafics:guardedby annotation: a struct
// field annotated `// grafics:guardedby mu` may only be read or written
// while the sibling mutex field mu is held. A function holds the mutex if
// it calls <base>.mu.Lock() (exclusive) or <base>.mu.RLock() (shared)
// anywhere in its body, or if it is annotated `// grafics:locked mu`
// (caller holds exclusively) or `// grafics:rlocked mu` (caller holds at
// least shared). Writes require an exclusive hold; reads accept either.
//
// The check is flow-insensitive within one function: acquiring anywhere
// in the body counts for the whole body. Function literals form their own
// scope; they inherit the enclosing holds except when launched with `go`,
// since a goroutine body runs outside the caller's critical section.
//
// Two secondary rules ride along: calling a method annotated
// grafics:locked/rlocked requires the caller to hold the named mutex on
// the same receiver expression, and returning a pointer-shaped guarded
// field (pointer, map, slice, chan, func) while the lock is held is
// flagged as a critical-section leak. Suppress a finding with a
// `// grafics:lockok reason` comment on the offending line or the line
// above.
package lockcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "checks that grafics:guardedby fields are only accessed while their mutex is held",
	Run:  run,
}

// holdKey names one held mutex: the receiver/base expression it hangs off
// and the mutex field name.
type holdKey struct {
	base string
	mu   string
}

func run(pass *analysis.Pass) error {
	if !pass.Ann.HasGuards() {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			held := make(map[holdKey]bool)
			if fa := pass.Ann.FuncByDecl(fn); fa != nil && fn.Recv != nil && len(fn.Recv.List) > 0 && len(fn.Recv.List[0].Names) > 0 {
				recv := fn.Recv.List[0].Names[0].Name
				for mu, exclusive := range fa.Held {
					held[holdKey{recv, mu}] = exclusive
				}
			}
			checkScope(pass, fn.Body, held)
		}
	}
	return nil
}

// checkScope analyzes one function or function-literal body with the
// given inherited holds. Nested literals recurse; the body's own Lock and
// RLock calls are merged into the inherited set first.
func checkScope(pass *analysis.Pass, body *ast.BlockStmt, inherited map[holdKey]bool) {
	held := make(map[holdKey]bool, len(inherited))
	for k, v := range inherited {
		held[k] = v
	}
	collectAcquisitions(body, held)
	writes := collectWriteRoots(pass, body)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// A goroutine body runs after the critical section may have
			// ended: analyze it with no inherited holds.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkScope(pass, lit.Body, nil)
				for _, arg := range n.Call.Args {
					ast.Inspect(arg, walk)
				}
				return false
			}
		case *ast.FuncLit:
			// Synchronous closures (sort.Slice comparators etc.) execute
			// inside the enclosing critical section: inherit its holds.
			checkScope(pass, n.Body, held)
			return false
		case *ast.SelectorExpr:
			checkAccess(pass, n, held, writes)
			// Keep walking: the base of a guarded selector may itself be
			// a guarded selector.
		case *ast.CallExpr:
			checkCall(pass, n, held)
		case *ast.ReturnStmt:
			checkLeak(pass, n, held)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// collectAcquisitions records every <base>.<mu>.Lock() / RLock() call in
// the body, excluding nested function literals (their acquisitions belong
// to their own scope). Lock upgrades a shared hold; RLock never
// downgrades an exclusive one.
func collectAcquisitions(body *ast.BlockStmt, held map[holdKey]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		key := holdKey{types.ExprString(muSel.X), muSel.Sel.Name}
		if sel.Sel.Name == "Lock" {
			held[key] = true
		} else if !held[key] {
			held[key] = false
		}
		return true
	})
}

// collectWriteRoots finds every guarded selector in write position:
// assignment targets, inc/dec operands, and delete() map arguments,
// peeled through indexing, dereference, and parens. Nested literals are
// excluded for the same reason as acquisitions.
func collectWriteRoots(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	writes := make(map[*ast.SelectorExpr]bool)
	record := func(e ast.Expr) {
		if sel, ok := peel(e).(*ast.SelectorExpr); ok {
			writes[sel] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				if obj, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && obj != nil {
					record(n.Args[0])
				}
			}
		}
		return true
	})
	return writes
}

// peel strips indexing, dereference, and parens to reach the expression
// whose storage an assignment actually mutates.
func peel(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

// guardedField resolves a selector to its field object and guarding mutex
// name, or ok=false for non-field or unguarded selections.
func guardedField(pass *analysis.Pass, sel *ast.SelectorExpr) (types.Object, string, bool) {
	var obj types.Object
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		obj = s.Obj()
	} else if u := pass.TypesInfo.Uses[sel.Sel]; u != nil {
		if _, isVar := u.(*types.Var); isVar {
			obj = u
		}
	}
	if obj == nil {
		return nil, "", false
	}
	mu := pass.Ann.GuardedBy(obj)
	if mu == "" {
		return nil, "", false
	}
	return obj, mu, true
}

// checkAccess flags reads and writes of guarded fields outside their
// critical section.
func checkAccess(pass *analysis.Pass, sel *ast.SelectorExpr, held map[holdKey]bool, writes map[*ast.SelectorExpr]bool) {
	obj, mu, ok := guardedField(pass, sel)
	if !ok || pass.Ann.Suppressed(sel.Pos(), "lockok") {
		return
	}
	base := types.ExprString(sel.X)
	exclusive, holding := held[holdKey{base, mu}]
	if writes[sel] {
		switch {
		case !holding:
			pass.Reportf(sel.Pos(), "write to %s.%s requires holding %s.%s (grafics:guardedby)", base, obj.Name(), base, mu)
		case !exclusive:
			pass.Reportf(sel.Pos(), "write to %s.%s under shared %s.%s; exclusive Lock required", base, obj.Name(), base, mu)
		}
		return
	}
	if !holding {
		pass.Reportf(sel.Pos(), "read of %s.%s requires holding %s.%s (grafics:guardedby)", base, obj.Name(), base, mu)
	}
}

// checkCall enforces grafics:locked / grafics:rlocked at call sites: the
// caller must hold the named mutex on the same receiver expression, with
// an exclusive hold satisfying a shared requirement but not vice versa.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, held map[holdKey]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	callee := pass.TypesInfo.Uses[sel.Sel]
	if callee == nil {
		return
	}
	fa := pass.Ann.FuncByObj(callee)
	if fa == nil || len(fa.Held) == 0 || pass.Ann.Suppressed(call.Pos(), "lockok") {
		return
	}
	base := types.ExprString(sel.X)
	for mu, needExclusive := range fa.Held {
		exclusive, holding := held[holdKey{base, mu}]
		switch {
		case !holding:
			pass.Reportf(call.Pos(), "call to %s requires holding %s.%s (grafics:%s)", sel.Sel.Name, base, mu, lockWord(needExclusive))
		case needExclusive && !exclusive:
			pass.Reportf(call.Pos(), "call to %s requires exclusive %s.%s but only a shared hold is in scope", sel.Sel.Name, base, mu)
		}
	}
}

func lockWord(exclusive bool) string {
	if exclusive {
		return "locked"
	}
	return "rlocked"
}

// checkLeak flags returning a pointer-shaped guarded field while its
// mutex is held: the caller receives an alias into state the lock no
// longer protects.
func checkLeak(pass *analysis.Pass, ret *ast.ReturnStmt, held map[holdKey]bool) {
	for _, res := range ret.Results {
		sel, ok := res.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		obj, mu, ok := guardedField(pass, sel)
		if !ok || pass.Ann.Suppressed(res.Pos(), "lockok") {
			continue
		}
		base := types.ExprString(sel.X)
		if _, holding := held[holdKey{base, mu}]; !holding {
			continue // already reported as an unguarded read
		}
		if !pointerShaped(pass.TypesInfo.Types[res].Type) {
			continue
		}
		pass.Reportf(res.Pos(), "returning guarded %s.%s leaks it out of the %s.%s critical section; return a copy or annotate grafics:lockok", base, obj.Name(), base, mu)
	}
}

// pointerShaped reports whether returning t aliases shared storage.
func pointerShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Signature:
		return true
	}
	return false
}
