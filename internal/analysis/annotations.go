package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Directive is one parsed grafics: annotation: "// grafics:<name> <arg>
// [free-text reason]". The grammar is documented in the README's "Static
// analysis" section.
type Directive struct {
	// Name is the directive keyword: guardedby, locked, rlocked, hotpath,
	// allocok, ctxok, lockok.
	Name string
	// Arg is the first token after the keyword (a mutex field name for
	// guardedby/locked/rlocked; empty or a free-text reason otherwise).
	Arg string
}

// FuncAnn is the annotation set of one function declaration.
type FuncAnn struct {
	// Held maps mutex field names the caller must hold to whether the hold
	// is exclusive (grafics:locked) or may be shared (grafics:rlocked).
	Held map[string]bool
	// Hotpath marks the function for hotpathalloc.
	Hotpath bool
	// CtxOK suppresses ctxcheck for the whole function body.
	CtxOK bool
}

// Annotations is the per-package index of grafics: directives: guarded
// fields, annotated functions, and line-level suppressions.
type Annotations struct {
	fset *token.FileSet
	// guarded maps a struct field object to the name of the sibling mutex
	// field that guards it.
	guarded map[types.Object]string
	// funcs maps function-declaration name objects to their annotations.
	funcs map[types.Object]*FuncAnn
	// decls maps the declarations themselves, for analyzers walking syntax.
	decls map[*ast.FuncDecl]*FuncAnn
	// lines maps filename -> line -> suppression directive names present
	// on (or immediately above) that line.
	lines map[string]map[int]map[string]bool
}

// directivePrefix introduces a machine-readable annotation comment.
const directivePrefix = "grafics:"

// parseDirective extracts a Directive from one comment's text, or ok=false.
func parseDirective(text string) (Directive, bool) {
	t := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(t, directivePrefix) {
		return Directive{}, false
	}
	t = strings.TrimPrefix(t, directivePrefix)
	fields := strings.Fields(t)
	if len(fields) == 0 {
		return Directive{}, false
	}
	d := Directive{Name: fields[0]}
	if len(fields) > 1 {
		d.Arg = fields[1]
	}
	return d, true
}

// directivesIn collects the directives of a comment group.
func directivesIn(g *ast.CommentGroup) []Directive {
	if g == nil {
		return nil
	}
	var out []Directive
	for _, c := range g.List {
		if d, ok := parseDirective(c.Text); ok {
			out = append(out, d)
		}
	}
	return out
}

// ParseAnnotations builds the annotation index for one package. info may
// be nil (annotation-only callers); field and function objects are then
// unresolvable and only line-level suppressions are indexed.
func ParseAnnotations(fset *token.FileSet, files []*ast.File, info *types.Info) *Annotations {
	ann := &Annotations{
		fset:    fset,
		guarded: make(map[types.Object]string),
		funcs:   make(map[types.Object]*FuncAnn),
		decls:   make(map[*ast.FuncDecl]*FuncAnn),
		lines:   make(map[string]map[int]map[string]bool),
	}
	for _, f := range files {
		// Line-level suppressions: every grafics: comment marks its own
		// line; a suppression applies to diagnostics on the same line or
		// the line directly below (comment-above-statement style).
		for _, g := range f.Comments {
			for _, c := range g.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := ann.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					ann.lines[pos.Filename] = byLine
				}
				set := byLine[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					byLine[pos.Line] = set
				}
				set[d.Name] = true
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				ann.indexStruct(n, info)
			case *ast.FuncDecl:
				ann.indexFunc(n, info)
			}
			return true
		})
	}
	return ann
}

// indexStruct records guardedby annotations on struct fields.
func (a *Annotations) indexStruct(st *ast.StructType, info *types.Info) {
	for _, field := range st.Fields.List {
		var mu string
		for _, d := range append(directivesIn(field.Doc), directivesIn(field.Comment)...) {
			if d.Name == "guardedby" && d.Arg != "" {
				mu = d.Arg
			}
		}
		if mu == "" || info == nil {
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				a.guarded[obj] = mu
			}
		}
	}
}

// indexFunc records locked/rlocked/hotpath/ctxok annotations on function
// declarations.
func (a *Annotations) indexFunc(fn *ast.FuncDecl, info *types.Info) {
	var fa *FuncAnn
	get := func() *FuncAnn {
		if fa == nil {
			fa = &FuncAnn{Held: make(map[string]bool)}
		}
		return fa
	}
	for _, d := range directivesIn(fn.Doc) {
		switch d.Name {
		case "locked":
			if d.Arg != "" {
				get().Held[d.Arg] = true
			}
		case "rlocked":
			if d.Arg != "" {
				if held := get().Held; !held[d.Arg] {
					held[d.Arg] = false
				}
			}
		case "hotpath":
			get().Hotpath = true
		case "ctxok":
			get().CtxOK = true
		}
	}
	if fa == nil {
		return
	}
	a.decls[fn] = fa
	if info != nil {
		if obj := info.Defs[fn.Name]; obj != nil {
			a.funcs[obj] = fa
		}
	}
}

// GuardedBy returns the guarding mutex field name for a field object, or
// "" when the field carries no grafics:guardedby annotation.
func (a *Annotations) GuardedBy(field types.Object) string { return a.guarded[field] }

// HasGuards reports whether any field in the package is annotated.
func (a *Annotations) HasGuards() bool { return len(a.guarded) > 0 }

// FuncByDecl returns the annotation set of a function declaration, or nil.
func (a *Annotations) FuncByDecl(fn *ast.FuncDecl) *FuncAnn { return a.decls[fn] }

// FuncByObj returns the annotation set of a function object (for
// call-site checks), or nil.
func (a *Annotations) FuncByObj(obj types.Object) *FuncAnn { return a.funcs[obj] }

// Suppressed reports whether a diagnostic named name at pos is silenced
// by a grafics:<name> comment on the same line or the line directly above.
func (a *Annotations) Suppressed(pos token.Pos, name string) bool {
	p := a.fset.Position(pos)
	byLine := a.lines[p.Filename]
	if byLine == nil {
		return false
	}
	return byLine[p.Line][name] || byLine[p.Line-1][name]
}
