package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// EigenOptions configures the power-iteration eigensolver.
type EigenOptions struct {
	// MaxIter bounds the number of power iterations per eigenpair.
	MaxIter int
	// Tol is the convergence tolerance on the change of the Rayleigh
	// quotient between iterations.
	Tol float64
	// Seed seeds the random starting vectors so results are
	// reproducible.
	Seed int64
}

// DefaultEigenOptions returns options suitable for the matrix sizes used in
// this repository (up to a few thousand rows).
func DefaultEigenOptions() EigenOptions {
	return EigenOptions{MaxIter: 1000, Tol: 1e-10, Seed: 1}
}

// TopEigen computes the k largest-magnitude eigenpairs of the symmetric
// matrix m using power iteration with Hotelling deflation. The matrix is
// copied, so m is not modified. Eigenvalues are returned in order of
// decreasing magnitude alongside their unit eigenvectors.
func TopEigen(m *Matrix, k int, opts EigenOptions) (values []float64, vectors [][]float64, err error) {
	if m.Rows != m.Cols {
		return nil, nil, fmt.Errorf("linalg: TopEigen on %dx%d: %w", m.Rows, m.Cols, ErrDimensionMismatch)
	}
	n := m.Rows
	if k < 0 || k > n {
		return nil, nil, fmt.Errorf("linalg: TopEigen k=%d out of range [0,%d]", k, n)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 1000
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	work := m.Clone()
	rng := rand.New(rand.NewSource(opts.Seed))
	values = make([]float64, 0, k)
	vectors = make([][]float64, 0, k)
	v := make([]float64, n)
	next := make([]float64, n)
	for p := 0; p < k; p++ {
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		Normalize(v)
		lambda := 0.0
		for it := 0; it < opts.MaxIter; it++ {
			work.MulVec(v, next)
			newLambda := Dot(v, next)
			nn := Normalize(next)
			if nn == 0 {
				// Matrix annihilated the vector: remaining
				// spectrum is (numerically) zero.
				newLambda = 0
				for i := range next {
					next[i] = 0
				}
				lambda = newLambda
				break
			}
			copy(v, next)
			if math.Abs(newLambda-lambda) <= opts.Tol*(math.Abs(newLambda)+opts.Tol) {
				lambda = newLambda
				break
			}
			lambda = newLambda
		}
		values = append(values, lambda)
		vectors = append(vectors, Clone(v))
		// Hotelling deflation: work -= lambda * v v^T.
		for i := 0; i < n; i++ {
			row := work.Row(i)
			vi := v[i]
			for j := range row {
				row[j] -= lambda * vi * v[j]
			}
		}
	}
	return values, vectors, nil
}
