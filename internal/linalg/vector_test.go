package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"empty", nil, nil, 0},
		{"ones", []float64{1, 1, 1}, []float64{1, 1, 1}, 3},
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0},
		{"mixed", []float64{1, -2, 3}, []float64{4, 5, -6}, 4 - 10 - 18},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dot(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 2, 3}
	Axpy(2, []float64{1, 1, 1}, y)
	want := []float64{3, 4, 5}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy got %v, want %v", y, want)
		}
	}
}

func TestNorm2AndNormalize(t *testing.T) {
	v := []float64{3, 4}
	if got := Norm2(v); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	n := Normalize(v)
	if !almostEqual(n, 5, 1e-12) {
		t.Errorf("Normalize returned %v, want 5", n)
	}
	if !almostEqual(Norm2(v), 1, 1e-12) {
		t.Errorf("post-normalize norm = %v, want 1", Norm2(v))
	}
	z := []float64{0, 0}
	if n := Normalize(z); n != 0 {
		t.Errorf("Normalize(zero) = %v, want 0", n)
	}
}

func TestDistance(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := Distance(a, b); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Distance = %v, want 5", got)
	}
	if got := SquaredDistance(a, b); !almostEqual(got, 25, 1e-12) {
		t.Errorf("SquaredDistance = %v, want 25", got)
	}
}

func TestCosineSimilarity(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"identical", []float64{1, 2}, []float64{1, 2}, 1},
		{"opposite", []float64{1, 0}, []float64{-1, 0}, -1},
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0},
		{"zero vector", []float64{0, 0}, []float64{1, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CosineSimilarity(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("CosineSimilarity = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMean(t *testing.T) {
	got := Mean([][]float64{{1, 2}, {3, 4}, {5, 6}})
	want := []float64{3, 4}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("Mean = %v, want %v", got, want)
		}
	}
	if Mean(nil) != nil {
		t.Error("Mean(nil) should be nil")
	}
}

// clampVec maps arbitrary float64s (including Inf/NaN/huge values from
// testing/quick) into a numerically safe range for property tests.
func clampVec(in []float64) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		out[i] = math.Mod(v, 1000)
	}
	return out
}

// Property: Cauchy-Schwarz |a.b| <= ||a|| ||b||.
func TestDotCauchySchwarzProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		av, bv := clampVec(a[:]), clampVec(b[:])
		lhs := math.Abs(Dot(av, bv))
		rhs := Norm2(av) * Norm2(bv)
		return lhs <= rhs*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Distance.
func TestDistanceTriangleProperty(t *testing.T) {
	f := func(a, b, c [6]float64) bool {
		av, bv, cv := clampVec(a[:]), clampVec(b[:]), clampVec(c[:])
		ab := Distance(av, bv)
		bc := Distance(bv, cv)
		ac := Distance(av, cv)
		return ac <= ab+bc+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cosine similarity is bounded in [-1, 1].
func TestCosineBoundedProperty(t *testing.T) {
	f := func(a, b [5]float64) bool {
		c := CosineSimilarity(clampVec(a[:]), clampVec(b[:]))
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
