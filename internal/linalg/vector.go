// Package linalg provides the dense linear-algebra primitives used across
// the GRAFICS reproduction: vector kernels, dense matrices, an iterative
// eigensolver, and the distance/centering helpers needed by classical MDS
// and t-SNE. Everything is stdlib-only and allocation-conscious; the hot
// kernels (Dot, Axpy) are written to be inlinable and bounds-check friendly.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two operands have incompatible
// shapes.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Dot returns the inner product of a and b. It panics if the lengths
// differ; all callers in this module construct equal-length vectors, so a
// mismatch is a programming error, not a runtime condition.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean (l2) norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// SquaredDistance returns ||a-b||^2.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SquaredDistance length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance ||a-b||.
func Distance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// CosineSimilarity returns a.b / (||a|| ||b||). If either vector has zero
// norm the similarity is defined as 0 so that the derived dissimilarity
// (1 - cos) is maximal, matching the paper's MDS setup where an all-missing
// record carries no information.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Normalize scales x to unit l2 norm in place and returns the original
// norm. A zero vector is left unchanged.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range x {
		x[i] *= inv
	}
	return n
}

// Mean returns the element-wise mean of the given equal-length vectors.
// It returns nil for an empty input.
func Mean(vecs [][]float64) []float64 {
	if len(vecs) == 0 {
		return nil
	}
	out := make([]float64, len(vecs[0]))
	for _, v := range vecs {
		Axpy(1, v, out)
	}
	Scale(1/float64(len(vecs)), out)
	return out
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Zeros returns a zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }
