package linalg

import (
	"math"
	"testing"
)

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("NewMatrixFromRows: %v", err)
	}
	if m.Rows != 2 || m.Cols != 2 {
		t.Fatalf("shape %dx%d, want 2x2", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := NewMatrixFromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("expected error on ragged rows")
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	bad := NewMatrix(3, 3)
	if _, err := a.Mul(bad); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestMatrixMulVec(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 0}, {0, 2}, {1, 1}})
	out := make([]float64, 3)
	a.MulVec([]float64{3, 4}, out)
	want := []float64{3, 8, 7}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("MulVec got %v, want %v", out, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape %dx%d, want 3x2", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Errorf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestDoubleCenter(t *testing.T) {
	// Squared distances of points on a line: 0, 3, 7 (1-D coordinates).
	pts := []float64{0, 3, 7}
	n := len(pts)
	d2 := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := pts[i] - pts[j]
			d2.Set(i, j, d*d)
		}
	}
	d2.DoubleCenter()
	// After double centering, B = X_c X_c^T where X_c is centered coords.
	mean := (0.0 + 3 + 7) / 3
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := (pts[i] - mean) * (pts[j] - mean)
			if !almostEqual(d2.At(i, j), want, 1e-9) {
				t.Errorf("B[%d][%d] = %v, want %v", i, j, d2.At(i, j), want)
			}
		}
	}
}

func TestSymmetrize(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2}, {4, 3}})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Errorf("Symmetrize got %v / %v, want 3 / 3", m.At(0, 1), m.At(1, 0))
	}
}

func TestTopEigen(t *testing.T) {
	// Symmetric matrix with known eigenvalues 3 and 1:
	// [[2,1],[1,2]] has eigenpairs (3, [1,1]/sqrt2), (1, [1,-1]/sqrt2).
	m, _ := NewMatrixFromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := TopEigen(m, 2, DefaultEigenOptions())
	if err != nil {
		t.Fatalf("TopEigen: %v", err)
	}
	if !almostEqual(vals[0], 3, 1e-6) {
		t.Errorf("lambda0 = %v, want 3", vals[0])
	}
	if !almostEqual(vals[1], 1, 1e-6) {
		t.Errorf("lambda1 = %v, want 1", vals[1])
	}
	// Eigenvector direction check (up to sign).
	v0 := vecs[0]
	if !almostEqual(math.Abs(v0[0]), math.Sqrt2/2, 1e-5) || !almostEqual(math.Abs(v0[1]), math.Sqrt2/2, 1e-5) {
		t.Errorf("v0 = %v, want +-[0.707,0.707]", v0)
	}
}

func TestTopEigenResidualProperty(t *testing.T) {
	// For a random symmetric matrix, ||Av - lambda v|| should be small for
	// each returned eigenpair.
	n := 12
	m := NewMatrix(n, n)
	// Deterministic pseudo-random fill.
	seed := uint64(42)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>33)/float64(1<<31) - 1
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, next())
		}
	}
	m.Symmetrize()
	vals, vecs, err := TopEigen(m, 3, DefaultEigenOptions())
	if err != nil {
		t.Fatalf("TopEigen: %v", err)
	}
	out := make([]float64, n)
	for p := range vals {
		m.MulVec(vecs[p], out)
		Axpy(-vals[p], vecs[p], out)
		if r := Norm2(out); r > 1e-4 {
			t.Errorf("eigenpair %d residual %v too large (lambda=%v)", p, r, vals[p])
		}
	}
}

func TestTopEigenErrors(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, _, err := TopEigen(m, 1, DefaultEigenOptions()); err == nil {
		t.Error("expected error for non-square matrix")
	}
	sq := NewMatrix(2, 2)
	if _, _, err := TopEigen(sq, 5, DefaultEigenOptions()); err == nil {
		t.Error("expected error for k > n")
	}
}

func TestFrobeniusAndMaxAbs(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{3, 0}, {0, -4}})
	if got := m.FrobeniusNorm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
}
