package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a Rows x Cols zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: NewMatrix negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix whose rows are copies of the given
// equal-length slices.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: row %d has %d cols, want %d: %w", i, len(r), cols, ErrDimensionMismatch)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// MulVec computes m * x and writes the result into out, which must have
// length m.Rows. It returns out for chaining.
func (m *Matrix) MulVec(x, out []float64) []float64 {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec shape %dx%d with x=%d out=%d", m.Rows, m.Cols, len(x), len(out)))
	}
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// Mul returns m*other as a new matrix.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("linalg: Mul %dx%d by %dx%d: %w", m.Rows, m.Cols, other.Rows, other.Cols, ErrDimensionMismatch)
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := other.Row(k)
			Axpy(av, brow, orow)
		}
	}
	return out, nil
}

// Symmetrize sets m = (m + m^T)/2 in place; m must be square.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("linalg: Symmetrize on %dx%d", m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// DoubleCenter applies the centering transform B = -1/2 * J D J (with
// J = I - 11^T/n) to a square matrix of squared dissimilarities, in place.
// This is the Torgerson step of classical MDS.
func (m *Matrix) DoubleCenter() {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("linalg: DoubleCenter on %dx%d", m.Rows, m.Cols))
	}
	n := m.Rows
	if n == 0 {
		return
	}
	rowMean := make([]float64, n)
	var grand float64
	for i := 0; i < n; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v
		}
		rowMean[i] = s / float64(n)
		grand += s
	}
	grand /= float64(n * n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = -0.5 * (row[j] - rowMean[i] - rowMean[j] + grand)
		}
	}
}

// FrobeniusNorm returns sqrt(sum of squared entries).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var best float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}
